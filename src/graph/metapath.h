#ifndef HYBRIDGNN_GRAPH_METAPATH_H_
#define HYBRIDGNN_GRAPH_METAPATH_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace hybridgnn {

/// A metapath scheme P = o_0 -r_1-> o_1 -r_2-> ... -r_n-> o_n
/// (Definition 3). `node_types` has length n+1 and `relations` length n.
/// When all relations coincide, the scheme is intra-relationship; otherwise
/// it is inter-relationship.
class MetapathScheme {
 public:
  MetapathScheme() = default;
  MetapathScheme(std::vector<NodeTypeId> node_types,
                 std::vector<RelationId> relations);

  /// Number of hops n (= |P|).
  size_t length() const { return relations_.size(); }
  const std::vector<NodeTypeId>& node_types() const { return node_types_; }
  const std::vector<RelationId>& relations() const { return relations_; }
  NodeTypeId source_type() const { return node_types_.front(); }
  NodeTypeId target_type() const { return node_types_.back(); }

  /// True when r_1 = r_2 = ... = r_n (Definition 3).
  bool IsIntraRelationship() const;
  /// The single relation of an intra-relationship scheme.
  RelationId relation() const { return relations_.front(); }

  /// Validates all type/relation ids against `g`.
  Status Validate(const MultiplexHeteroGraph& g) const;

  /// Human-readable form, e.g. "user -click-> item -click-> user".
  std::string ToString(const MultiplexHeteroGraph& g) const;

  bool operator==(const MetapathScheme& o) const {
    return node_types_ == o.node_types_ && relations_ == o.relations_;
  }

  /// Parses a compact intra-relationship scheme "U-I-U" where each letter
  /// (or dash-separated token) names a node type of `g` (first letter match
  /// is attempted when the exact name is absent), all hops using `rel`.
  static StatusOr<MetapathScheme> ParseIntra(const MultiplexHeteroGraph& g,
                                             const std::string& pattern,
                                             RelationId rel);

 private:
  std::vector<NodeTypeId> node_types_;
  std::vector<RelationId> relations_;
};

/// Generates the default intra-relationship scheme set used when a dataset
/// profile does not specify its own: for every relation r and every ordered
/// type pair (a, b) connected under r in `g`, the symmetric 2-hop scheme
/// a -r-> b -r-> a. Capped at `max_schemes_per_relation` per relation.
std::vector<MetapathScheme> DefaultSchemes(const MultiplexHeteroGraph& g,
                                           size_t max_schemes_per_relation);

/// Schemes from `all` whose source type matches phi(v) and whose relation
/// set is {r} — the paper's rho(v) intersected with PS_r.
std::vector<const MetapathScheme*> SchemesForNode(
    const std::vector<MetapathScheme>& all, const MultiplexHeteroGraph& g,
    NodeId v, RelationId r);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_GRAPH_METAPATH_H_
