#include "graph/stats.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace hybridgnn {

GraphStats ComputeStats(const MultiplexHeteroGraph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();
  s.num_node_types = g.num_node_types();
  s.num_relations = g.num_relations();
  s.nodes_per_type.resize(g.num_node_types());
  for (NodeTypeId t = 0; t < g.num_node_types(); ++t) {
    s.nodes_per_type[t] = g.NodesOfType(t).size();
  }
  s.edges_per_relation.resize(g.num_relations());
  for (RelationId r = 0; r < g.num_relations(); ++r) {
    s.edges_per_relation[r] = g.EdgesOfRelation(r).size();
  }
  size_t total_degree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const size_t d = g.TotalDegree(v);
    total_degree += d;
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.isolated_nodes;
  }
  s.avg_degree = g.num_nodes() == 0
                     ? 0.0
                     : static_cast<double>(total_degree) /
                           static_cast<double>(g.num_nodes());
  // Multiplexity: count distinct node pairs, and pairs seen under >= 2 rels.
  std::map<std::pair<NodeId, NodeId>, size_t> pair_rels;
  for (const auto& e : g.edges()) {
    ++pair_rels[{e.src, e.dst}];
  }
  size_t multi = 0;
  for (const auto& [pair, cnt] : pair_rels) {
    if (cnt >= 2) ++multi;
  }
  s.multiplex_pair_fraction =
      pair_rels.empty() ? 0.0
                        : static_cast<double>(multi) /
                              static_cast<double>(pair_rels.size());
  return s;
}

std::string FormatStats(const MultiplexHeteroGraph& g,
                        const GraphStats& s) {
  std::string out;
  out += StrFormat("|V| = %zu, |E| = %zu, |O| = %zu, |R| = %zu\n",
                   s.num_nodes, s.num_edges, s.num_node_types,
                   s.num_relations);
  for (NodeTypeId t = 0; t < s.nodes_per_type.size(); ++t) {
    out += StrFormat("  type %-12s : %zu nodes\n",
                     g.node_type_name(t).c_str(), s.nodes_per_type[t]);
  }
  for (RelationId r = 0; r < s.edges_per_relation.size(); ++r) {
    out += StrFormat("  relation %-8s : %zu edges\n",
                     g.relation_name(r).c_str(), s.edges_per_relation[r]);
  }
  out += StrFormat(
      "  avg degree %.2f, max degree %zu, isolated %zu, multiplex pairs "
      "%.1f%%\n",
      s.avg_degree, s.max_degree, s.isolated_nodes,
      100.0 * s.multiplex_pair_fraction);
  return out;
}

}  // namespace hybridgnn
