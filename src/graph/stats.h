#ifndef HYBRIDGNN_GRAPH_STATS_H_
#define HYBRIDGNN_GRAPH_STATS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace hybridgnn {

/// Summary statistics of a multiplex heterogeneous graph; used to print the
/// paper's Table II analogue and by tests that validate generator output.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;  // unique undirected (src,dst,rel) triples
  size_t num_node_types = 0;
  size_t num_relations = 0;
  std::vector<size_t> nodes_per_type;
  std::vector<size_t> edges_per_relation;
  double avg_degree = 0.0;   // mean total degree over nodes
  size_t max_degree = 0;     // max total degree
  size_t isolated_nodes = 0; // total degree zero
  /// Fraction of connected node pairs linked under >= 2 relations — the
  /// graph's multiplexity.
  double multiplex_pair_fraction = 0.0;
};

/// Computes statistics in O(V + E log E).
GraphStats ComputeStats(const MultiplexHeteroGraph& g);

/// Renders `stats` as an aligned text table.
std::string FormatStats(const MultiplexHeteroGraph& g,
                        const GraphStats& stats);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_GRAPH_STATS_H_
