#ifndef HYBRIDGNN_GRAPH_FRONTIER_H_
#define HYBRIDGNN_GRAPH_FRONTIER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hybridgnn {

/// CSR layout over one minibatch flow's sampled neighbor lists: segment s
/// covers `indices[indptr[s] .. indptr[s+1])`, where each index is a row of
/// whatever embedding table the frontier is gathered from. One gather of
/// the flat index list plus one segment reduction replaces the per-level /
/// per-relation gather+mean walk the aggregation API used before.
///
/// `indptr` always has num_segments()+1 entries with indptr[0] == 0 and
/// indptr.back() == indices.size(). The segment ops in nn/sparse.h consult
/// only `indptr` (they reduce an already-gathered [m, dim] block);
/// `indices` is read by GatherRowsSegmented and may be left empty for
/// frontiers that only ever describe segmentation.
///
/// Producers (sampling/neighbor_sampler.h) fill a frontier once per flow
/// and reuse the buffers across minibatches; the autograd ops copy what
/// they need into the tape arena, so a thread_local scratch frontier is
/// safe to rebuild per flow.
struct MinibatchFrontier {
  std::vector<size_t> indptr{0};
  std::vector<int32_t> indices;

  size_t num_segments() const { return indptr.size() - 1; }
  size_t num_indices() const { return indices.size(); }
  size_t segment_size(size_t s) const { return indptr[s + 1] - indptr[s]; }

  /// Resets to zero segments, keeping buffer capacity.
  void Clear() {
    indptr.assign(1, 0);
    indices.clear();
  }

  /// Ends the current segment at the current index count. Build frontiers
  /// by pushing a segment's indices, then closing it.
  void CloseSegment() { indptr.push_back(indices.size()); }

  /// True when every segment holds exactly one row — reducing such a
  /// frontier is the identity, which lets consumers skip the reduce op.
  bool AllSingleton() const {
    for (size_t s = 0; s + 1 < indptr.size(); ++s) {
      if (indptr[s + 1] - indptr[s] != 1) return false;
    }
    return true;
  }

  /// Shared trivial frontier: one segment covering one row. Used where an
  /// already-reduced [1, dim] representation is fed back through the
  /// frontier-first aggregator API (the Eq. 3 fold).
  static const MinibatchFrontier& IdentityRow() {
    static const MinibatchFrontier f{{0, 1}, {0}};
    return f;
  }
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_GRAPH_FRONTIER_H_
