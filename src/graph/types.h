#ifndef HYBRIDGNN_GRAPH_TYPES_H_
#define HYBRIDGNN_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace hybridgnn {

/// Dense node identifier within one graph.
using NodeId = uint32_t;
/// Node type (the paper's O set), e.g. user / item / author.
using NodeTypeId = uint16_t;
/// Edge type a.k.a. relationship (the paper's R set), e.g. click / like.
using RelationId = uint16_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr RelationId kInvalidRelation =
    std::numeric_limits<RelationId>::max();
inline constexpr NodeTypeId kInvalidNodeType =
    std::numeric_limits<NodeTypeId>::max();

/// One (src, dst) pair under relation `rel`. Undirected edges are stored once
/// in edge lists (canonical src <= dst) and twice in adjacency.
struct EdgeTriple {
  NodeId src;
  NodeId dst;
  RelationId rel;

  bool operator==(const EdgeTriple& o) const {
    return src == o.src && dst == o.dst && rel == o.rel;
  }
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_GRAPH_TYPES_H_
