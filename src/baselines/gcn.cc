#include "baselines/gcn.h"

#include "baselines/common.h"
#include "common/logging.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/sparse.h"
#include "tensor/optimizer.h"

namespace hybridgnn {

Status Gcn::Fit(const MultiplexHeteroGraph& g, const FitOptions& options) {
  (void)options;  // dense full-graph training; no parallel path yet
  const auto& edges = g.edges();
  if (edges.empty()) return Status::FailedPrecondition("GCN: no edges");
  Rng rng(options_.seed);
  SparseMatrix s = NormalizedAdjacency(g);

  EmbeddingTable features(g.num_nodes(), options_.input_dim, rng);
  Linear w1(options_.input_dim, options_.hidden_dim, rng);
  Linear w2(options_.hidden_dim, options_.output_dim, rng);
  Adam optimizer(options_.learning_rate);
  optimizer.AddParameters(features.parameters());
  optimizer.AddParameters(w1.parameters());
  optimizer.AddParameters(w2.parameters());

  auto forward = [&]() {
    ag::Var h1 = ag::Relu(w1.Forward(SpMM(s, features.table())));
    return w2.Forward(SpMM(s, h1));  // [V, out]
  };

  for (size_t step = 0; step < options_.steps; ++step) {
    ag::Var h = forward();
    std::vector<int32_t> us, vs;
    std::vector<float> labels;
    for (size_t b = 0; b < options_.batch_edges; ++b) {
      const auto& e = edges[rng.UniformUint64(edges.size())];
      us.push_back(static_cast<int32_t>(e.src));
      vs.push_back(static_cast<int32_t>(e.dst));
      labels.push_back(1.0f);
      for (size_t n = 0; n < options_.negatives_per_edge; ++n) {
        EdgeTriple neg = SampleNegativeEdge(g, e, rng);
        us.push_back(static_cast<int32_t>(neg.src));
        vs.push_back(static_cast<int32_t>(neg.dst));
        labels.push_back(0.0f);
      }
    }
    ag::Var hu = ag::GatherRows(h, std::move(us));
    ag::Var hv = ag::GatherRows(h, std::move(vs));
    ag::Var loss = ag::BceWithLogits(ag::RowwiseDot(hu, hv), labels);
    ag::Backward(loss);
    optimizer.Step();
    optimizer.ZeroGrad();
  }
  embeddings_ = forward()->value;
  fitted_ = true;
  return Status::OK();
}

Tensor Gcn::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;
  return embeddings_.CopyRow(v);
}

}  // namespace hybridgnn
