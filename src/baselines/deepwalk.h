#ifndef HYBRIDGNN_BASELINES_DEEPWALK_H_
#define HYBRIDGNN_BASELINES_DEEPWALK_H_

#include <string>

#include "baselines/common.h"
#include "eval/embedding_model.h"
#include "sampling/corpus.h"

namespace hybridgnn {

/// DeepWalk (Perozzi et al., KDD 2014): uniform random walks + skip-gram.
/// Node and edge types are ignored, as in the paper's baseline setup.
class DeepWalk : public EmbeddingModel {
 public:
  struct Options {
    SgnsOptions sgns;
    CorpusOptions corpus;
    uint64_t seed = 7;
  };

  explicit DeepWalk(const Options& options) : options_(options) {}

  std::string name() const override { return "DeepWalk"; }
  /// options.num_threads feeds both walk generation (reproducible parallel
  /// streams) and Hogwild SGNS; options.deterministic keeps SGNS serial.
  Status Fit(const MultiplexHeteroGraph& g,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override;
  Tensor EmbeddingsFor(std::span<const std::pair<NodeId, RelationId>> queries)
      const override;

 private:
  Options options_;
  Tensor embeddings_;
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_DEEPWALK_H_
