#include "baselines/deepwalk.h"

#include "common/logging.h"

namespace hybridgnn {

Status DeepWalk::Fit(const MultiplexHeteroGraph& g,
                     const FitOptions& options) {
  const size_t threads = options.threads();
  Rng rng(options_.seed);
  CorpusOptions corpus_opts = options_.corpus;
  corpus_opts.num_threads = threads;
  WalkCorpus corpus = BuildUniformCorpus(g, corpus_opts, rng);
  if (corpus.pairs.empty()) {
    return Status::FailedPrecondition("DeepWalk: empty walk corpus");
  }
  options.Report("corpus", 1, 1);
  NegativeSampler sampler(g);
  SgnsOptions sgns = options_.sgns;
  sgns.num_threads = options.deterministic ? 1 : threads;
  SgnsEmbedder embedder(g.num_nodes(), sgns.dim, rng);
  embedder.Train(corpus.pairs, sampler, sgns, rng);
  embeddings_ = embedder.embeddings();
  options.Report("train", 1, 1);
  fitted_ = true;
  return Status::OK();
}

Tensor DeepWalk::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;  // relation-blind
  return embeddings_.CopyRow(v);
}

Tensor DeepWalk::EmbeddingsFor(
    std::span<const std::pair<NodeId, RelationId>> queries) const {
  HYBRIDGNN_CHECK(fitted_);
  return GatherNodeRows(embeddings_, queries);
}

}  // namespace hybridgnn
