#include "baselines/deepwalk.h"

#include "common/logging.h"

namespace hybridgnn {

Status DeepWalk::Fit(const MultiplexHeteroGraph& g) {
  Rng rng(options_.seed);
  WalkCorpus corpus = BuildUniformCorpus(g, options_.corpus, rng);
  if (corpus.pairs.empty()) {
    return Status::FailedPrecondition("DeepWalk: empty walk corpus");
  }
  NegativeSampler sampler(g);
  SgnsEmbedder embedder(g.num_nodes(), options_.sgns.dim, rng);
  embedder.Train(corpus.pairs, sampler, options_.sgns, rng);
  embeddings_ = embedder.embeddings();
  fitted_ = true;
  return Status::OK();
}

Tensor DeepWalk::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;  // relation-blind
  return embeddings_.CopyRow(v);
}

}  // namespace hybridgnn
