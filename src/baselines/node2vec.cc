#include "baselines/node2vec.h"

#include "common/logging.h"

namespace hybridgnn {

Status Node2Vec::Fit(const MultiplexHeteroGraph& g) {
  Rng rng(options_.seed);
  WalkCorpus corpus =
      BuildNode2VecCorpus(g, options_.corpus, options_.p, options_.q, rng);
  if (corpus.pairs.empty()) {
    return Status::FailedPrecondition("node2vec: empty walk corpus");
  }
  NegativeSampler sampler(g);
  SgnsEmbedder embedder(g.num_nodes(), options_.sgns.dim, rng);
  embedder.Train(corpus.pairs, sampler, options_.sgns, rng);
  embeddings_ = embedder.embeddings();
  fitted_ = true;
  return Status::OK();
}

Tensor Node2Vec::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;
  return embeddings_.CopyRow(v);
}

}  // namespace hybridgnn
