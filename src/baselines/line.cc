#include "baselines/line.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "kernels/kernels.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn {

namespace {

// One (u, target) sigmoid step against `table` rows: accumulates the u
// gradient in `grad`, updates the target row in place. LINE's push is the
// same fused sigmoid-gradient update as SGNS, so it dispatches through the
// kernel layer (scalar/AVX2).
HYBRIDGNN_NO_SANITIZE_THREAD
void LinePush(const float* eu, float* row, float* grad, size_t half,
              float label, float lr) {
  kernels::SgnsUpdateStep(eu, row, grad, half, label, lr);
}

// One sampled-edge SGD step on both orders and both directions. Hogwild
// workers race on embedding rows by design (sparse updates, tolerant
// objective) — uninstrumented under TSan like SgnsEmbedder::Update.
HYBRIDGNN_NO_SANITIZE_THREAD
void LineUpdateEdge(Tensor& first, Tensor& second, Tensor& second_ctx,
                    const NegativeSampler& sampler, const EdgeTriple& e,
                    size_t half, size_t negatives, float lr, Rng& rng) {
  // Undirected: train both directions.
  for (int dir = 0; dir < 2; ++dir) {
    const NodeId u = dir == 0 ? e.src : e.dst;
    const NodeId v = dir == 0 ? e.dst : e.src;
    // ---- first order: symmetric, targets live in `first` itself ----
    {
      float* eu = first.RowPtr(u);
      std::vector<float> grad(half, 0.0f);
      LinePush(eu, first.RowPtr(v), grad.data(), half, 1.0f, lr);
      for (size_t n = 0; n < negatives; ++n) {
        LinePush(eu, first.RowPtr(sampler.SampleLike(v, rng)), grad.data(),
                 half, 0.0f, lr);
      }
      kernels::Axpy(-1.0f, grad.data(), eu, half);
    }
    // ---- second order: targets are context rows ----
    {
      float* eu = second.RowPtr(u);
      std::vector<float> grad(half, 0.0f);
      LinePush(eu, second_ctx.RowPtr(v), grad.data(), half, 1.0f, lr);
      for (size_t n = 0; n < negatives; ++n) {
        LinePush(eu, second_ctx.RowPtr(sampler.SampleLike(v, rng)),
                 grad.data(), half, 0.0f, lr);
      }
      kernels::Axpy(-1.0f, grad.data(), eu, half);
    }
  }
}

}  // namespace

Status Line::Fit(const MultiplexHeteroGraph& g, const FitOptions& options) {
  const auto& edges = g.edges();
  if (edges.empty()) return Status::FailedPrecondition("LINE: no edges");
  const size_t threads = options.deterministic ? 1 : options.threads();
  Rng rng(options_.seed);
  const size_t half = std::max<size_t>(1, options_.dim / 2);
  NegativeSampler sampler(g);

  // Order 1: symmetric vertex embeddings; score = u_i . u_j.
  Tensor first(g.num_nodes(), half);
  EmbeddingInit(first, rng);
  // Order 2: vertex + context embeddings; score = u_i . c_j.
  Tensor second(g.num_nodes(), half);
  EmbeddingInit(second, rng);
  Tensor second_ctx(g.num_nodes(), half);

  const size_t total = options_.samples_per_edge * edges.size();
  if (threads <= 1 || total < 2 * threads) {
    for (size_t s = 0; s < total; ++s) {
      const float lr = options_.learning_rate *
                       (1.0f - 0.9f * static_cast<float>(s) /
                                   static_cast<float>(total));
      const auto& e = edges[rng.UniformUint64(edges.size())];
      LineUpdateEdge(first, second, second_ctx, sampler, e, half,
                     options_.negatives, lr, rng);
    }
  } else {
    // Hogwild: contiguous shards of the sample budget, per-worker streams,
    // lr decay keyed off the global sample index.
    RunParallel(threads, threads, [&](size_t w) {
      Rng wrng = rng.Fork(w + 1);
      const size_t lo = total * w / threads;
      const size_t hi = total * (w + 1) / threads;
      for (size_t s = lo; s < hi; ++s) {
        const float lr = options_.learning_rate *
                         (1.0f - 0.9f * static_cast<float>(s) /
                                     static_cast<float>(total));
        const auto& e = edges[wrng.UniformUint64(edges.size())];
        LineUpdateEdge(first, second, second_ctx, sampler, e, half,
                       options_.negatives, lr, wrng);
      }
    });
  }
  options.Report("train", 1, 1);
  // Normalize halves so neither order dominates the concatenated dot.
  L2NormalizeRowsInPlace(first);
  L2NormalizeRowsInPlace(second);
  embeddings_ = ConcatCols({first, second});
  fitted_ = true;
  return Status::OK();
}

Tensor Line::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;
  return embeddings_.CopyRow(v);
}

Tensor Line::EmbeddingsFor(
    std::span<const std::pair<NodeId, RelationId>> queries) const {
  HYBRIDGNN_CHECK(fitted_);
  return GatherNodeRows(embeddings_, queries);
}

}  // namespace hybridgnn
