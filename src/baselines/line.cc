#include "baselines/line.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn {

Status Line::Fit(const MultiplexHeteroGraph& g) {
  const auto& edges = g.edges();
  if (edges.empty()) return Status::FailedPrecondition("LINE: no edges");
  Rng rng(options_.seed);
  const size_t half = std::max<size_t>(1, options_.dim / 2);
  NegativeSampler sampler(g);

  // Order 1: symmetric vertex embeddings; score = u_i . u_j.
  Tensor first(g.num_nodes(), half);
  EmbeddingInit(first, rng);
  // Order 2: vertex + context embeddings; score = u_i . c_j.
  Tensor second(g.num_nodes(), half);
  EmbeddingInit(second, rng);
  Tensor second_ctx(g.num_nodes(), half);

  const size_t total = options_.samples_per_edge * edges.size();
  for (size_t s = 0; s < total; ++s) {
    const float lr = options_.learning_rate *
                     (1.0f - 0.9f * static_cast<float>(s) /
                                 static_cast<float>(total));
    const auto& e = edges[rng.UniformUint64(edges.size())];
    // Undirected: train both directions.
    for (int dir = 0; dir < 2; ++dir) {
      const NodeId u = dir == 0 ? e.src : e.dst;
      const NodeId v = dir == 0 ? e.dst : e.src;
      // ---- first order ----
      {
        float* eu = first.RowPtr(u);
        std::vector<float> grad(half, 0.0f);
        auto push = [&](NodeId target, float label) {
          float* ev = first.RowPtr(target);
          float dot = 0.0f;
          for (size_t j = 0; j < half; ++j) dot += eu[j] * ev[j];
          const float gcoef = (1.0f / (1.0f + std::exp(-dot)) - label) * lr;
          for (size_t j = 0; j < half; ++j) {
            grad[j] += gcoef * ev[j];
            ev[j] -= gcoef * eu[j];
          }
        };
        push(v, 1.0f);
        for (size_t n = 0; n < options_.negatives; ++n) {
          push(sampler.SampleLike(v, rng), 0.0f);
        }
        for (size_t j = 0; j < half; ++j) eu[j] -= grad[j];
      }
      // ---- second order ----
      {
        float* eu = second.RowPtr(u);
        std::vector<float> grad(half, 0.0f);
        auto push = [&](NodeId target, float label) {
          float* cv = second_ctx.RowPtr(target);
          float dot = 0.0f;
          for (size_t j = 0; j < half; ++j) dot += eu[j] * cv[j];
          const float gcoef = (1.0f / (1.0f + std::exp(-dot)) - label) * lr;
          for (size_t j = 0; j < half; ++j) {
            grad[j] += gcoef * cv[j];
            cv[j] -= gcoef * eu[j];
          }
        };
        push(v, 1.0f);
        for (size_t n = 0; n < options_.negatives; ++n) {
          push(sampler.SampleLike(v, rng), 0.0f);
        }
        for (size_t j = 0; j < half; ++j) eu[j] -= grad[j];
      }
    }
  }
  // Normalize halves so neither order dominates the concatenated dot.
  L2NormalizeRowsInPlace(first);
  L2NormalizeRowsInPlace(second);
  embeddings_ = ConcatCols({first, second});
  fitted_ = true;
  return Status::OK();
}

Tensor Line::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;
  return embeddings_.CopyRow(v);
}

}  // namespace hybridgnn
