#include "baselines/gatne.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/logging.h"
#include "common/parallel.h"
#include "nn/sparse.h"
#include "plan/plan.h"
#include "sampling/negative_sampler.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/sgns.h"
#include "tensor/init.h"
#include "tensor/optimizer.h"

namespace hybridgnn {

void Gatne::SampleNode(const MultiplexHeteroGraph& g, NodeId v, Rng& rng,
                       MinibatchFrontier* out) const {
  BuildRelationFrontier(g, v, options_.fanout, rng, out);
  // The edge table keys rows as node * R + relation; remap each segment's
  // raw NodeIds in place.
  for (RelationId r = 0; r < num_relations_; ++r) {
    for (size_t i = out->indptr[r]; i < out->indptr[r + 1]; ++i) {
      out->indices[i] = static_cast<int32_t>(
          static_cast<size_t>(out->indices[i]) * num_relations_ + r);
    }
  }
}

ag::Var Gatne::ForwardNodeFrontier(NodeId v,
                                   const MinibatchFrontier& frontier) const {
  // U_v: per-relation aggregated edge embeddings (mean over sampled direct
  // neighbors' edge embeddings under that relation; own embedding when
  // isolated). One frontier with a segment per relation replaces the
  // per-relation gather+mean walk: a single fused gather of the flat index
  // list, then one segment mean straight to the [R, edge] stack.
  ag::Var block = GatherRowsSegmented(edge_embed_->table(), frontier);
  ag::Var u_stack = SegmentMean(block, frontier);  // [R, edge]

  ag::Var hidden = ag::Tanh(attn_proj_->Forward(u_stack));  // [R, hidden]
  ag::Var base_row = base_->ForwardNodes({v});              // [1, base]

  std::vector<ag::Var> out_rows;
  out_rows.reserve(num_relations_);
  for (RelationId r = 0; r < num_relations_; ++r) {
    // a_{v,r} = softmax(w_r^T tanh(W U_v^T)) over relations.
    ag::Var scores = ag::MatMul(hidden, attn_query_[r]);      // [R, 1]
    ag::Var weights = ag::SoftmaxRows(ag::Transpose(scores)); // [1, R]
    ag::Var mixed = ag::MatMul(weights, u_stack);             // [1, edge]
    out_rows.push_back(ag::MatMul(mixed, m_rel_[r]));         // [1, base]
  }
  ag::Var local =
      out_rows.size() == 1 ? out_rows[0] : ag::ConcatRows(out_rows);
  if (options_.local_scale != 1.0f) {
    local = ag::Scale(local, options_.local_scale);
  }
  return ag::AddRowBroadcast(local, base_row);  // [R, base]
}

ag::Var Gatne::ForwardNode(const MultiplexHeteroGraph& g, NodeId v,
                           Rng& rng) const {
  static thread_local MinibatchFrontier frontier;
  SampleNode(g, v, rng, &frontier);
  return ForwardNodeFrontier(v, frontier);
}

Status Gatne::Fit(const MultiplexHeteroGraph& g, const FitOptions& options) {
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");
  for (const auto& s : schemes_) HYBRIDGNN_RETURN_IF_ERROR(s.Validate(g));
  num_relations_ = g.num_relations();
  const size_t threads = options.threads();
  Rng rng(options_.seed);

  base_ =
      std::make_unique<EmbeddingTable>(g.num_nodes(), options_.base_dim, rng);
  context_ =
      std::make_unique<EmbeddingTable>(g.num_nodes(), options_.base_dim, rng);
  edge_embed_ = std::make_unique<EmbeddingTable>(
      g.num_nodes() * num_relations_, options_.edge_dim, rng);
  attn_proj_ =
      std::make_unique<Linear>(options_.edge_dim, options_.attn_hidden, rng);
  attn_query_.clear();
  m_rel_.clear();
  for (RelationId r = 0; r < num_relations_; ++r) {
    Tensor q(options_.attn_hidden, 1);
    XavierUniform(q, rng);
    attn_query_.push_back(ag::Param(std::move(q)));
    // Zero-init output projection (see HybridGNN): the relation-specific
    // branch phases in without swamping the base embedding early on.
    m_rel_.push_back(
        ag::Param(Tensor(options_.edge_dim, options_.base_dim)));
  }

  const bool freeze_tables =
      options_.pretrain_base && options_.freeze_pretrained;
  Adam optimizer(options_.learning_rate);
  if (!freeze_tables) {
    optimizer.AddParameters(base_->parameters());
    optimizer.AddParameters(context_->parameters());
  }
  optimizer.AddParameters(edge_embed_->parameters());
  optimizer.AddParameters(attn_proj_->parameters());
  optimizer.AddParameters(attn_query_);
  optimizer.AddParameters(m_rel_);

  CorpusOptions corpus_opts = options_.corpus;
  corpus_opts.num_threads = threads;
  WalkCorpus corpus = BuildMetapathCorpus(g, schemes_, corpus_opts, rng);
  if (corpus.pairs.empty()) {
    return Status::FailedPrecondition("GATNE: no skip-gram pairs");
  }
  options.Report("corpus", 1, 1);
  NegativeSampler neg_sampler(g);

  if (options_.pretrain_base) {
    CorpusOptions pre_corpus = corpus_opts;
    pre_corpus.direct_edge_copies = 2;
    WalkCorpus uniform = BuildUniformCorpus(g, pre_corpus, rng);
    uniform.pairs.reserve(uniform.pairs.size() +
                          2 * pre_corpus.direct_edge_copies *
                              g.edges().size());
    for (size_t copy = 0; copy < pre_corpus.direct_edge_copies; ++copy) {
      for (const auto& e : g.edges()) {
        uniform.pairs.push_back(SkipGramPair{e.src, e.dst, e.rel});
        uniform.pairs.push_back(SkipGramPair{e.dst, e.src, e.rel});
      }
    }
    SgnsOptions pre;
    pre.dim = options_.base_dim;
    pre.negatives = options_.num_negatives;
    pre.num_threads = options.deterministic ? 1 : threads;
    SgnsEmbedder pretrainer(g.num_nodes(), options_.base_dim, rng);
    pretrainer.Train(uniform.pairs, neg_sampler, pre, rng);
    base_->table()->value = pretrainer.embeddings();
    context_->table()->value = pretrainer.contexts();
    options.Report("pretrain", 1, 1);
  }

  // Fine-tune the relation machinery on the link objective with
  // relationship-aware negatives; internal-validation early stopping with
  // best-epoch restore (same protocol as HybridGNN).
  std::vector<EdgeTriple> train_edges = g.edges();
  rng.Shuffle(train_edges);
  const size_t val_count = std::min<size_t>(
      std::max<size_t>(16, static_cast<size_t>(
                               options_.internal_val_fraction *
                               static_cast<double>(train_edges.size()))),
      train_edges.size() / 2);
  std::vector<EdgeTriple> val_edges(train_edges.begin(),
                                    train_edges.begin() + val_count);
  train_edges.erase(train_edges.begin(), train_edges.begin() + val_count);
  std::vector<NodeId> val_negs;  // two fixed negatives per val edge
  std::vector<NodeId> val_negs2;
  for (const auto& e : val_edges) {
    val_negs.push_back(neg_sampler.SampleRelationAware(
        e.src, e.dst, e.rel, options_.cross_negative_fraction, rng));
    val_negs2.push_back(neg_sampler.SampleRelationAware(
        e.src, e.dst, e.rel, options_.cross_negative_fraction, rng));
  }

  std::vector<ag::Var> all_params;
  all_params.push_back(base_->table());
  all_params.push_back(context_->table());
  all_params.push_back(edge_embed_->table());
  for (const auto& p : attn_proj_->parameters()) all_params.push_back(p);
  for (const auto& p : attn_query_) all_params.push_back(p);
  for (const auto& p : m_rel_) all_params.push_back(p);
  auto snapshot = [&]() {
    std::vector<Tensor> out;
    for (const auto& p : all_params) out.push_back(p->value);
    return out;
  };
  auto restore = [&](const std::vector<Tensor>& snap) {
    for (size_t i = 0; i < all_params.size(); ++i) {
      all_params[i]->value = snap[i];
    }
  };
  auto validation_auc = [&]() {
    Rng val_rng(options_.seed ^ 0x7A11);
    double wins = 0.0;
    for (size_t i = 0; i < val_edges.size(); ++i) {
      ag::TapeScope tape;  // scoring-only graphs, rewound per edge
      const EdgeTriple& e = val_edges[i];
      ag::Var eu = ForwardNode(g, e.src, val_rng);
      ag::Var ev = ForwardNode(g, e.dst, val_rng);
      ag::Var ex = ForwardNode(g, val_negs[i], val_rng);
      ag::Var ex2 = ForwardNode(g, val_negs2[i], val_rng);
      const float* u_row = eu->value.RowPtr(e.rel);
      const float* v_row = ev->value.RowPtr(e.rel);
      const float* x_row = ex->value.RowPtr(e.rel);
      const float* x2_row = ex2->value.RowPtr(e.rel);
      double pos = 0.0, neg = 0.0, neg2 = 0.0;
      for (size_t j = 0; j < options_.base_dim; ++j) {
        pos += static_cast<double>(u_row[j]) * v_row[j];
        neg += static_cast<double>(u_row[j]) * x_row[j];
        neg2 += static_cast<double>(u_row[j]) * x2_row[j];
      }
      for (double n : {neg, neg2}) {
        if (pos > n) {
          wins += 1.0;
        } else if (pos == n) {
          wins += 0.5;
        }
      }
    }
    return wins / (2.0 * static_cast<double>(val_edges.size()));
  };

  std::vector<size_t> order(train_edges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  double best_val = validation_auc();
  std::vector<Tensor> best_snapshot = snapshot();
  size_t bad_epochs = 0;
  const size_t edge_batch = std::max<size_t>(16, options_.batch_size / 2);

  // Compiled execution plans (src/plan): each distinct node-frontier
  // structure is traced once (the recording build runs eagerly), and every
  // later node with the same segment layout replays the plan with zero
  // graph construction. BuildRelationFrontier always emits exactly-fanout
  // segments, so in practice one plan serves every node after the first.
  // Replays are bitwise identical to eager, so the flag never changes
  // results.
  const bool use_plan = plan::Enabled(options.compile_plan);
  plan::PlanCache plan_cache;
  plan::PassOptions plan_pass_opts;
  if (freeze_tables) {
    plan_pass_opts.frozen.insert(base_->table().get());
    plan_pass_opts.frozen.insert(context_->table().get());
  }

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    const size_t use = options_.max_pairs_per_epoch == 0
                           ? order.size()
                           : std::min(order.size(),
                                      options_.max_pairs_per_epoch);
    for (size_t start = 0; start < use; start += edge_batch) {
      const size_t end = std::min(use, start + edge_batch);
      // Tape before Vars; thread-local scratch reused across batches (see
      // HybridGnn::Fit for the pattern, including the sample/build split).
      ag::TapeScope tape;
      struct BatchRow {
        int lhs;
        int rhs;
        RelationId rel;
        float label;
      };
      static thread_local std::vector<NodeId> node_ids;
      static thread_local std::vector<MinibatchFrontier> sketches;
      static thread_local std::vector<BatchRow> brows;
      static thread_local std::vector<float> labels;
      node_ids.clear();
      brows.clear();
      labels.clear();
      // Phase 1 — sample, consuming the RNG stream in exactly the order the
      // fused sample+build loop consumed it. Frontier slots beyond the
      // current batch's node count keep their buffers for reuse.
      auto node_ord = [&](NodeId v) -> int {
        for (size_t i = 0; i < node_ids.size(); ++i) {
          if (node_ids[i] == v) return static_cast<int>(i);
        }
        node_ids.push_back(v);
        if (sketches.size() < node_ids.size()) sketches.emplace_back();
        SampleNode(g, v, rng, &sketches[node_ids.size() - 1]);
        return static_cast<int>(node_ids.size()) - 1;
      };
      for (size_t i = start; i < end; ++i) {
        const EdgeTriple& e = train_edges[order[i]];
        const int src_ord = node_ord(e.src);
        const int dst_ord = node_ord(e.dst);
        brows.push_back(BatchRow{src_ord, dst_ord, e.rel, 1.0f});
        for (size_t n = 0; n < options_.num_negatives; ++n) {
          NodeId x = neg_sampler.SampleRelationAware(
              e.src, e.dst, e.rel, options_.cross_negative_fraction, rng);
          brows.push_back(BatchRow{src_ord, node_ord(x), e.rel, 0.0f});
        }
      }
      for (const BatchRow& row : brows) labels.push_back(row.label);

      // Phase 2 — build the step graph. Node frontier graphs are built
      // lazily at first use; with plans on, each distinct segment layout is
      // traced once and replayed thereafter (per node: gather indices,
      // indptr twice, base row id bound per replay). The cheap per-row loss
      // assembly stays eager.
      auto node_key = [](const MinibatchFrontier& f) {
        uint64_t key = 0xcbf29ce484222325ull;
        for (size_t p : f.indptr) plan::HashCombine(&key, p);
        return key;
      };
      auto replay_node = [&](int ord, plan::CompiledStep& step) -> ag::Var {
        static thread_local std::vector<int32_t> base_id;
        const MinibatchFrontier& f = sketches[ord];
        plan::StepInputs in;
        in.i32.push_back(f.indices);  // GatherRowsSegmented indices
        in.szs.push_back(f.indptr);   // ... and its indptr
        in.szs.push_back(f.indptr);   // SegmentMean indptr
        base_id.assign(1, static_cast<int32_t>(node_ids[ord]));
        in.i32.push_back(base_id);  // base-table gather
        return step.ReplayTrain(in);
      };
      auto build_loss = [&]() -> ag::Var {
        static thread_local std::vector<ag::Var> built;
        static thread_local std::vector<ag::Var> lhs, rhs;
        built.assign(node_ids.size(), nullptr);
        auto node_var = [&](int ord) -> const ag::Var& {
          ag::Var& slot = built[ord];
          if (slot == nullptr) {
            if (!use_plan) {
              slot = ForwardNodeFrontier(node_ids[ord], sketches[ord]);
            } else {
              plan::PlanCache::Entry& ent =
                  plan_cache.Slot(node_key(sketches[ord]));
              if (ent.step != nullptr) {
                slot = replay_node(ord, *ent.step);
              } else if (ent.poisoned) {
                slot = ForwardNodeFrontier(node_ids[ord], sketches[ord]);
              } else {
                // First sighting of this segment layout: record the eager
                // build, which then participates in the batch graph as-is.
                plan::Recorder rec;
                ag::Var v = ForwardNodeFrontier(node_ids[ord], sketches[ord]);
                ent.step = rec.Finalize(v, plan_pass_opts);
                ent.poisoned = (ent.step == nullptr);
                slot = std::move(v);
              }
            }
          }
          return slot;
        };
        for (const BatchRow& row : brows) {
          lhs.push_back(ag::SliceRows(node_var(row.lhs), row.rel, 1));
          rhs.push_back(ag::SliceRows(node_var(row.rhs), row.rel, 1));
        }
        ag::Var logits =
            ag::RowwiseDot(ag::ConcatRows(lhs), ag::ConcatRows(rhs));
        ag::Var loss = ag::BceWithLogits(logits, labels);
        built.clear();
        lhs.clear();
        rhs.clear();
        return loss;
      };

      {
        ag::Var loss = build_loss();
        ag::Backward(loss);
      }
      optimizer.Step();
      optimizer.ZeroGrad();
    }
    const double val = validation_auc();
    options.Report("epoch", epoch + 1, options_.epochs);
    if (val > best_val + 1e-4) {
      best_val = val;
      best_snapshot = snapshot();
      bad_epochs = 0;
    } else if (++bad_epochs >= options_.early_stopping_patience) {
      break;
    }
  }
  if (options_.restore_best) restore(best_snapshot);

  cache_ = Tensor(g.num_nodes() * num_relations_, options_.base_dim);
  auto cache_node = [&](NodeId v, Rng& node_rng) {
    ag::TapeScope tape;  // inference-only graph, rewound per node
    ag::Var all = ForwardNode(g, v, node_rng);
    for (RelationId r = 0; r < num_relations_; ++r) {
      const float* src = all->value.RowPtr(r);
      std::copy(src, src + options_.base_dim,
                cache_.RowPtr(v * num_relations_ + r));
    }
  };
  if (threads > 1) {
    // Per-node forked streams: reproducible and thread-count invariant.
    const Rng cache_master(options_.seed ^ 0xDEFACE);
    RunParallel(threads, g.num_nodes(), [&](size_t v) {
      Rng node_rng = cache_master.Fork(v);
      cache_node(static_cast<NodeId>(v), node_rng);
    });
  } else {
    Rng cache_rng(options_.seed ^ 0xDEFACE);
    for (NodeId v = 0; v < g.num_nodes(); ++v) cache_node(v, cache_rng);
  }
  options.Report("cache", 1, 1);
  fitted_ = true;
  return Status::OK();
}

Tensor Gatne::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_ && r < num_relations_);
  return cache_.CopyRow(v * num_relations_ + r);
}

Tensor Gatne::EmbeddingsFor(
    std::span<const std::pair<NodeId, RelationId>> queries) const {
  HYBRIDGNN_CHECK(fitted_);
  Tensor out(queries.size(), options_.base_dim);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& [v, r] = queries[i];
    HYBRIDGNN_CHECK(r < num_relations_);
    std::memcpy(out.RowPtr(i), cache_.RowPtr(v * num_relations_ + r),
                options_.base_dim * sizeof(float));
  }
  return out;
}

}  // namespace hybridgnn
