#ifndef HYBRIDGNN_BASELINES_NODE2VEC_H_
#define HYBRIDGNN_BASELINES_NODE2VEC_H_

#include <string>

#include "baselines/common.h"
#include "eval/embedding_model.h"
#include "sampling/corpus.h"

namespace hybridgnn {

/// node2vec (Grover & Leskovec, KDD 2016): second-order biased walks with
/// return parameter p and in-out parameter q, then skip-gram. Relation-blind.
class Node2Vec : public EmbeddingModel {
 public:
  struct Options {
    SgnsOptions sgns;
    CorpusOptions corpus;
    double p = 0.5;
    double q = 2.0;
    uint64_t seed = 11;
  };

  explicit Node2Vec(const Options& options) : options_(options) {}

  std::string name() const override { return "node2vec"; }
  Status Fit(const MultiplexHeteroGraph& g,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override;
  Tensor EmbeddingsFor(std::span<const std::pair<NodeId, RelationId>> queries)
      const override;

 private:
  Options options_;
  Tensor embeddings_;
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_NODE2VEC_H_
