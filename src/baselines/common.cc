#include "baselines/common.h"

#include <cstring>

namespace hybridgnn {

Tensor GatherNodeRows(
    const Tensor& table,
    std::span<const std::pair<NodeId, RelationId>> queries) {
  Tensor out(queries.size(), table.cols());
  for (size_t i = 0; i < queries.size(); ++i) {
    std::memcpy(out.RowPtr(i), table.RowPtr(queries[i].first),
                table.cols() * sizeof(float));
  }
  return out;
}

EdgeTriple SampleNegativeEdge(const MultiplexHeteroGraph& g,
                              const EdgeTriple& pos, Rng& rng) {
  const auto& candidates = g.NodesOfType(g.node_type(pos.dst));
  for (int attempt = 0; attempt < 32; ++attempt) {
    NodeId x = candidates[rng.UniformUint64(candidates.size())];
    if (x == pos.src || x == pos.dst) continue;
    if (g.HasEdge(pos.src, x, pos.rel)) continue;
    return EdgeTriple{pos.src, x, pos.rel};
  }
  // Dense fallback: accept a random candidate.
  return EdgeTriple{pos.src,
                    candidates[rng.UniformUint64(candidates.size())],
                    pos.rel};
}

}  // namespace hybridgnn
