#include "baselines/graphsage.h"

#include <unordered_map>

#include "baselines/common.h"
#include "common/logging.h"
#include "nn/sparse.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/optimizer.h"

namespace hybridgnn {

ag::Var GraphSage::ForwardNode(const MultiplexHeteroGraph& g, NodeId v,
                               Rng& rng, const EmbeddingTable& features,
                               const MeanAggregator& agg) const {
  auto levels = SampleLayers(g, v, options_.num_layers, options_.fanout, rng);
  // Frontier path: one fused gather over all levels, one segment mean, then
  // the aggregator fold (means row 0 is the deepest level).
  static thread_local MinibatchFrontier frontier;
  BuildLevelFrontier(levels, &frontier);
  ag::Var block = GatherRowsSegmented(features.table(), frontier);
  ag::Var means = SegmentMean(block, frontier);
  const size_t num_levels = frontier.num_segments();
  ag::Var rep = num_levels == 1 ? means : ag::SliceRows(means, 0, 1);
  for (size_t i = 1; i < num_levels; ++i) {
    rep = agg.Forward(MinibatchFrontier::IdentityRow(),
                      ag::SliceRows(means, i, 1), rep);
  }
  return rep;
}

Status GraphSage::Fit(const MultiplexHeteroGraph& g, const FitOptions& options) {
  (void)options;  // dense full-graph training; no parallel path yet
  const auto& edges = g.edges();
  if (edges.empty()) return Status::FailedPrecondition("GraphSage: no edges");
  Rng rng(options_.seed);
  EmbeddingTable features(g.num_nodes(), options_.dim, rng);
  MeanAggregator agg(options_.dim, rng);
  Adam optimizer(options_.learning_rate);
  optimizer.AddParameters(features.parameters());
  optimizer.AddParameters(agg.parameters());

  for (size_t step = 0; step < options_.steps; ++step) {
    std::unordered_map<NodeId, ag::Var> memo;
    auto emb = [&](NodeId v) {
      auto it = memo.find(v);
      if (it == memo.end()) {
        it = memo.emplace(v, ForwardNode(g, v, rng, features, agg)).first;
      }
      return it->second;
    };
    std::vector<ag::Var> hu, hv;
    std::vector<float> labels;
    for (size_t b = 0; b < options_.batch_edges; ++b) {
      const auto& e = edges[rng.UniformUint64(edges.size())];
      hu.push_back(emb(e.src));
      hv.push_back(emb(e.dst));
      labels.push_back(1.0f);
      for (size_t n = 0; n < options_.negatives_per_edge; ++n) {
        EdgeTriple neg = SampleNegativeEdge(g, e, rng);
        hu.push_back(emb(neg.src));
        hv.push_back(emb(neg.dst));
        labels.push_back(0.0f);
      }
    }
    ag::Var logits =
        ag::RowwiseDot(ag::ConcatRows(hu), ag::ConcatRows(hv));
    ag::Var loss = ag::BceWithLogits(logits, labels);
    ag::Backward(loss);
    optimizer.Step();
    optimizer.ZeroGrad();
  }

  // Cache inference embeddings.
  Rng cache_rng(options_.seed ^ 0xABCDEF);
  embeddings_ = Tensor(g.num_nodes(), options_.dim);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ag::Var e = ForwardNode(g, v, cache_rng, features, agg);
    const float* src = e->value.RowPtr(0);
    std::copy(src, src + options_.dim, embeddings_.RowPtr(v));
  }
  fitted_ = true;
  return Status::OK();
}

Tensor GraphSage::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;
  return embeddings_.CopyRow(v);
}

}  // namespace hybridgnn
