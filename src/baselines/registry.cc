#include "baselines/registry.h"

#include <cmath>

#include "baselines/deepwalk.h"
#include "baselines/gatne.h"
#include "baselines/gcn.h"
#include "baselines/graphsage.h"
#include "baselines/han.h"
#include "baselines/line.h"
#include "baselines/magnn.h"
#include "baselines/node2vec.h"
#include "baselines/rgcn.h"
#include "core/hybrid_gnn.h"

namespace hybridgnn {

namespace {

size_t ScaleSteps(size_t base, double effort) {
  return std::max<size_t>(1, static_cast<size_t>(std::llround(
                                 static_cast<double>(base) * effort)));
}

CorpusOptions MakeCorpus(const ModelBudget& b) {
  CorpusOptions c;
  c.num_walks_per_node = b.num_walks;
  c.walk_length = b.walk_length;
  c.window = b.window;
  return c;
}

}  // namespace

std::vector<std::string> AllModelNames() {
  return {"DeepWalk", "node2vec", "LINE",  "GCN",   "GraphSage",
          "HAN",      "MAGNN",    "R-GCN", "GATNE", "HybridGNN"};
}

StatusOr<std::unique_ptr<EmbeddingModel>> CreateModel(
    const std::string& name, const std::vector<MetapathScheme>& schemes,
    uint64_t seed, const ModelBudget& budget) {
  const CorpusOptions corpus = MakeCorpus(budget);
  if (name == "DeepWalk") {
    DeepWalk::Options o;
    o.corpus = corpus;
    o.sgns.epochs = ScaleSteps(2, budget.effort);
    o.sgns.max_pairs_per_epoch = budget.max_pairs_per_epoch * 10;
    o.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new DeepWalk(o));
  }
  if (name == "node2vec") {
    Node2Vec::Options o;
    o.corpus = corpus;
    o.sgns.epochs = ScaleSteps(2, budget.effort);
    o.sgns.max_pairs_per_epoch = budget.max_pairs_per_epoch * 10;
    o.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new Node2Vec(o));
  }
  if (name == "LINE") {
    Line::Options o;
    o.samples_per_edge = ScaleSteps(40, budget.effort);
    o.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new Line(o));
  }
  if (name == "GCN") {
    Gcn::Options o;
    o.steps = ScaleSteps(60, budget.effort);
    o.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new Gcn(o));
  }
  if (name == "GraphSage") {
    GraphSage::Options o;
    o.steps = ScaleSteps(80, budget.effort);
    o.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new GraphSage(o));
  }
  if (name == "HAN") {
    Han::Options o;
    o.steps = ScaleSteps(80, budget.effort);
    o.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new Han(o, schemes));
  }
  if (name == "MAGNN") {
    Magnn::Options o;
    o.steps = ScaleSteps(80, budget.effort);
    o.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new Magnn(o, schemes));
  }
  if (name == "R-GCN") {
    Rgcn::Options o;
    o.steps = ScaleSteps(60, budget.effort);
    o.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new Rgcn(o));
  }
  if (name == "GATNE") {
    Gatne::Options o;
    o.corpus = corpus;
    o.epochs = ScaleSteps(10, budget.effort);
    o.max_pairs_per_epoch = budget.max_pairs_per_epoch;
    o.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new Gatne(o, schemes));
  }
  if (name == "HybridGNN") {
    HybridGnnConfig c;
    c.corpus = corpus;
    c.epochs = ScaleSteps(10, budget.effort);
    c.max_pairs_per_epoch = budget.max_pairs_per_epoch;
    c.seed = seed;
    return std::unique_ptr<EmbeddingModel>(new HybridGnn(c, schemes));
  }
  return Status::NotFound("unknown model: " + name);
}

}  // namespace hybridgnn
