#include "baselines/rgcn.h"

#include <memory>

#include "baselines/common.h"
#include "common/logging.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/sparse.h"
#include "tensor/init.h"
#include "tensor/optimizer.h"

namespace hybridgnn {

Status Rgcn::Fit(const MultiplexHeteroGraph& g, const FitOptions& options) {
  (void)options;  // dense full-graph training; no parallel path yet
  const auto& edges = g.edges();
  if (edges.empty()) return Status::FailedPrecondition("R-GCN: no edges");
  Rng rng(options_.seed);
  const size_t num_rel = g.num_relations();

  std::vector<RelationOperator> ops;
  ops.reserve(num_rel);
  for (RelationId r = 0; r < num_rel; ++r) {
    ops.push_back(RelationAdjacency(g, r));
  }

  EmbeddingTable features(g.num_nodes(), options_.input_dim, rng);
  std::vector<std::unique_ptr<Linear>> w_rel1, w_rel2;
  for (RelationId r = 0; r < num_rel; ++r) {
    w_rel1.push_back(std::make_unique<Linear>(options_.input_dim,
                                              options_.hidden_dim, rng));
    w_rel2.push_back(std::make_unique<Linear>(options_.hidden_dim,
                                              options_.output_dim, rng));
  }
  Linear w_self1(options_.input_dim, options_.hidden_dim, rng);
  Linear w_self2(options_.hidden_dim, options_.output_dim, rng);
  Tensor diag_init(num_rel, options_.output_dim);
  UniformInit(diag_init, rng, 0.5f, 1.5f);
  ag::Var rel_diag = ag::Param(std::move(diag_init));

  Adam optimizer(options_.learning_rate);
  optimizer.AddParameters(features.parameters());
  for (const auto& w : w_rel1) optimizer.AddParameters(w->parameters());
  for (const auto& w : w_rel2) optimizer.AddParameters(w->parameters());
  optimizer.AddParameters(w_self1.parameters());
  optimizer.AddParameters(w_self2.parameters());
  optimizer.AddParameter(rel_diag);

  auto layer = [&](const ag::Var& h,
                   const std::vector<std::unique_ptr<Linear>>& w_rel,
                   const Linear& w_self) {
    ag::Var out = w_self.Forward(h);
    for (RelationId r = 0; r < num_rel; ++r) {
      out = ag::Add(out, w_rel[r]->Forward(SpMM(ops[r], h)));
    }
    return out;
  };
  auto forward = [&]() {
    ag::Var h1 = ag::Relu(layer(features.table(), w_rel1, w_self1));
    return layer(h1, w_rel2, w_self2);  // [V, out]
  };

  for (size_t step = 0; step < options_.steps; ++step) {
    ag::Var h = forward();
    std::vector<int32_t> us, vs, rs;
    std::vector<float> labels;
    for (size_t b = 0; b < options_.batch_edges; ++b) {
      const auto& e = edges[rng.UniformUint64(edges.size())];
      us.push_back(static_cast<int32_t>(e.src));
      vs.push_back(static_cast<int32_t>(e.dst));
      rs.push_back(static_cast<int32_t>(e.rel));
      labels.push_back(1.0f);
      for (size_t n = 0; n < options_.negatives_per_edge; ++n) {
        EdgeTriple neg = SampleNegativeEdge(g, e, rng);
        us.push_back(static_cast<int32_t>(neg.src));
        vs.push_back(static_cast<int32_t>(neg.dst));
        rs.push_back(static_cast<int32_t>(neg.rel));
        labels.push_back(0.0f);
      }
    }
    ag::Var hu = ag::GatherRows(h, std::move(us));
    ag::Var hv = ag::GatherRows(h, std::move(vs));
    ag::Var wr = ag::GatherRows(rel_diag, std::move(rs));
    // DistMult: sum_j hu_j * w_j * hv_j.
    ag::Var logits = ag::RowwiseDot(ag::Mul(hu, wr), hv);
    ag::Var loss = ag::BceWithLogits(logits, labels);
    ag::Backward(loss);
    optimizer.Step();
    optimizer.ZeroGrad();
  }
  embeddings_ = forward()->value;
  relation_diag_ = rel_diag->value;
  fitted_ = true;
  return Status::OK();
}

Tensor Rgcn::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;
  return embeddings_.CopyRow(v);
}

double Rgcn::Score(NodeId u, NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_ && r < relation_diag_.rows());
  double s = 0.0;
  const float* hu = embeddings_.RowPtr(u);
  const float* hv = embeddings_.RowPtr(v);
  const float* w = relation_diag_.RowPtr(r);
  for (size_t j = 0; j < embeddings_.cols(); ++j) {
    s += static_cast<double>(hu[j]) * w[j] * hv[j];
  }
  return s;
}

std::vector<double> Rgcn::ScoreMany(
    std::span<const EdgeTriple> queries) const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(Score(q.src, q.dst, q.rel));
  return out;
}

}  // namespace hybridgnn
