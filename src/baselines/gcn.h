#ifndef HYBRIDGNN_BASELINES_GCN_H_
#define HYBRIDGNN_BASELINES_GCN_H_

#include <string>

#include "eval/embedding_model.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// GCN (Kipf & Welling, ICLR 2017): two-layer full-batch graph convolution
/// over the symmetric-normalized union adjacency (heterogeneity ignored, as
/// in the paper's baseline protocol), trained with link-prediction BCE on
/// training edges plus sampled negatives. Node features are a trainable
/// table (the datasets are featureless).
class Gcn : public EmbeddingModel {
 public:
  struct Options {
    size_t input_dim = 64;
    size_t hidden_dim = 64;
    size_t output_dim = 64;
    size_t steps = 60;
    size_t batch_edges = 512;
    size_t negatives_per_edge = 1;
    float learning_rate = 0.01f;
    uint64_t seed = 17;
  };

  explicit Gcn(const Options& options) : options_(options) {}

  std::string name() const override { return "GCN"; }
  Status Fit(const MultiplexHeteroGraph& g,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override;

 private:
  Options options_;
  Tensor embeddings_;
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_GCN_H_
