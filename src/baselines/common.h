#ifndef HYBRIDGNN_BASELINES_COMMON_H_
#define HYBRIDGNN_BASELINES_COMMON_H_

#include <span>
#include <utility>

#include "common/rng.h"
#include "graph/graph.h"
#include "sampling/sgns.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// Samples a non-edge (src, x, rel) with x of the same type as `pos.dst`
/// (used by BCE-trained GNN baselines for on-the-fly negatives).
EdgeTriple SampleNegativeEdge(const MultiplexHeteroGraph& g,
                              const EdgeTriple& pos, Rng& rng);

/// Row-gather from a relation-blind [V, d] embedding table: result row i is
/// table row queries[i].first. The shared EmbeddingsFor fast path for
/// table-backed baselines (one allocation instead of one per query).
Tensor GatherNodeRows(const Tensor& table,
                      std::span<const std::pair<NodeId, RelationId>> queries);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_COMMON_H_
