#ifndef HYBRIDGNN_BASELINES_COMMON_H_
#define HYBRIDGNN_BASELINES_COMMON_H_

#include "common/rng.h"
#include "graph/graph.h"
#include "sampling/sgns.h"

namespace hybridgnn {

/// Samples a non-edge (src, x, rel) with x of the same type as `pos.dst`
/// (used by BCE-trained GNN baselines for on-the-fly negatives).
EdgeTriple SampleNegativeEdge(const MultiplexHeteroGraph& g,
                              const EdgeTriple& pos, Rng& rng);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_COMMON_H_
