#ifndef HYBRIDGNN_BASELINES_GATNE_H_
#define HYBRIDGNN_BASELINES_GATNE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "eval/embedding_model.h"
#include "graph/frontier.h"
#include "graph/metapath.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "sampling/corpus.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// GATNE-T (Cen et al., KDD 2019): relationship-specific embeddings
///   e_{v,r} = b_v + alpha * M_r^T (U_v a_{v,r}),
/// where b_v is a shared base embedding, U_v stacks per-relation edge
/// embeddings aggregated from direct neighbors, and a_{v,r} is a softmax
/// attention over relations. Trained with skip-gram + heterogeneous
/// negative sampling over metapath walks — the strongest baseline in the
/// paper and its runner-up in most columns.
class Gatne : public EmbeddingModel {
 public:
  struct Options {
    size_t base_dim = 128;   // b_v
    size_t edge_dim = 8;     // per-relation edge embeddings
    size_t attn_hidden = 16;
    size_t fanout = 8;
    size_t num_negatives = 5;
    /// Fraction of relationship-aware (cross-relation) negatives — matches
    /// HybridGNN's P_Neg for a fair comparison.
    double cross_negative_fraction = 0.5;
    size_t epochs = 10;
    size_t batch_size = 128;
    size_t max_pairs_per_epoch = 20000;
    float learning_rate = 1e-2f;
    /// Pretrain base/context tables with manual-SGD skip-gram on a
    /// relation-blind uniform corpus (as in the GATNE reference
    /// implementation) and freeze them during end-to-end training.
    bool pretrain_base = true;
    bool freeze_pretrained = false;
    /// Scale of the relation-specific branch (damps untrained noise).
    float local_scale = 0.5f;
    /// Early stopping on an internal validation holdout, as for HybridGNN.
    size_t early_stopping_patience = 8;
    double internal_val_fraction = 0.10;
    bool restore_best = true;
    CorpusOptions corpus;
    uint64_t seed = 37;
  };

  Gatne(const Options& options, std::vector<MetapathScheme> schemes)
      : options_(options), schemes_(std::move(schemes)) {}

  std::string name() const override { return "GATNE"; }
  /// options.num_threads parallelizes walk corpus, SGNS pretraining
  /// (Hogwild; serial under options.deterministic) and the frozen
  /// embedding cache.
  Status Fit(const MultiplexHeteroGraph& g,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override;
  Tensor EmbeddingsFor(std::span<const std::pair<NodeId, RelationId>> queries)
      const override;

 private:
  /// Samples v's per-relation neighbor frontier (all the randomness
  /// ForwardNode consumes) and remaps its indices into edge-table rows.
  /// Split from graph construction so the compiled-plan path
  /// (FitOptions{compile_plan}) can hash the sampled structure and replay a
  /// recorded step instead of rebuilding the graph.
  void SampleNode(const MultiplexHeteroGraph& g, NodeId v, Rng& rng,
                  MinibatchFrontier* out) const;

  /// Builds the e_{v,r} graph from a sampled frontier: [R, base_dim].
  /// Consumes no randomness; ForwardNode == SampleNode + this.
  ag::Var ForwardNodeFrontier(NodeId v, const MinibatchFrontier& f) const;

  /// e_{v,r} rows for all relations at once: [R, base_dim].
  ag::Var ForwardNode(const MultiplexHeteroGraph& g, NodeId v, Rng& rng) const;

  Options options_;
  std::vector<MetapathScheme> schemes_;

  std::unique_ptr<EmbeddingTable> base_;
  std::unique_ptr<EmbeddingTable> context_;
  std::unique_ptr<EmbeddingTable> edge_embed_;  // [V * R, edge_dim]
  std::unique_ptr<Linear> attn_proj_;           // edge_dim -> attn_hidden
  std::vector<ag::Var> attn_query_;             // per relation [hidden, 1]
  std::vector<ag::Var> m_rel_;                  // per relation [edge, base]

  size_t num_relations_ = 0;
  Tensor cache_;  // [(V * R), base_dim]
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_GATNE_H_
