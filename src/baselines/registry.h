#ifndef HYBRIDGNN_BASELINES_REGISTRY_H_
#define HYBRIDGNN_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "eval/embedding_model.h"
#include "graph/metapath.h"

namespace hybridgnn {

/// Shared compute budget for experiment harnesses: scales every model's
/// training effort coherently so benches stay laptop-fast by default and can
/// be cranked up via environment overrides.
struct ModelBudget {
  /// Multiplies epochs / optimization steps of every model (1.0 = default).
  double effort = 1.0;
  /// Random-walk corpus shared by walk-based models.
  size_t num_walks = 6;
  size_t walk_length = 8;
  size_t window = 3;
  /// Skip-gram pair cap per epoch for SGNS-style models.
  size_t max_pairs_per_epoch = 20000;
};

/// All model names accepted by CreateModel, in the paper's table order:
/// DeepWalk, node2vec, LINE, GCN, GraphSage, HAN, MAGNN, R-GCN, GATNE,
/// HybridGNN.
std::vector<std::string> AllModelNames();

/// Instantiates a model by paper name. `schemes` are the dataset's
/// predefined metapath schemes (used by HAN, MAGNN, GATNE and HybridGNN;
/// ignored by the relation-blind models). Deterministic in `seed`.
StatusOr<std::unique_ptr<EmbeddingModel>> CreateModel(
    const std::string& name, const std::vector<MetapathScheme>& schemes,
    uint64_t seed, const ModelBudget& budget);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_REGISTRY_H_
