#include "baselines/magnn.h"

#include <unordered_map>

#include "baselines/common.h"
#include "common/logging.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/semantic_attention.h"
#include "sampling/walker.h"
#include "tensor/optimizer.h"

namespace hybridgnn {

Status Magnn::Fit(const MultiplexHeteroGraph& g, const FitOptions& options) {
  (void)options;  // dense full-graph training; no parallel path yet
  const auto& edges = g.edges();
  if (edges.empty()) return Status::FailedPrecondition("MAGNN: no edges");
  for (const auto& s : schemes_) HYBRIDGNN_RETURN_IF_ERROR(s.Validate(g));
  Rng rng(options_.seed);
  EmbeddingTable features(g.num_nodes(), options_.dim, rng);
  Linear instance_proj(options_.dim, options_.dim, rng);
  SemanticAttention semantic(options_.dim, options_.semantic_hidden, rng);
  Adam optimizer(options_.learning_rate);
  optimizer.AddParameters(features.parameters());
  optimizer.AddParameters(instance_proj.parameters());
  optimizer.AddParameters(semantic.parameters());

  // One metapath embedding: mean over sampled instance encodings, where an
  // instance encoding is the (projected) mean of all its node embeddings.
  auto path_embed = [&](const MetapathScheme& s, NodeId v, Rng& r) -> ag::Var {
    std::vector<ag::Var> instances;
    for (size_t i = 0; i < options_.instances_per_path; ++i) {
      std::vector<NodeId> inst = MetapathWalk(g, s, v, s.length(), r);
      if (inst.size() < 2) continue;
      ag::Var nodes = features.ForwardNodes(inst);
      instances.push_back(ag::MeanRows(nodes));
    }
    if (instances.empty()) return features.ForwardNodes({v});
    ag::Var intra = instances.size() == 1
                        ? instances[0]
                        : ag::MeanRows(ag::ConcatRows(instances));
    return ag::Tanh(instance_proj.Forward(intra));
  };

  auto forward = [&](NodeId v, Rng& r) {
    std::vector<ag::Var> per_path;
    for (const auto& s : schemes_) {
      if (s.source_type() != g.node_type(v)) continue;
      per_path.push_back(path_embed(s, v, r));
    }
    if (per_path.empty()) return features.ForwardNodes({v});
    if (per_path.size() == 1) return per_path[0];
    return semantic.Forward(ag::ConcatRows(per_path));
  };

  for (size_t step = 0; step < options_.steps; ++step) {
    std::unordered_map<NodeId, ag::Var> memo;
    auto emb = [&](NodeId v) {
      auto it = memo.find(v);
      if (it == memo.end()) it = memo.emplace(v, forward(v, rng)).first;
      return it->second;
    };
    std::vector<ag::Var> hu, hv;
    std::vector<float> labels;
    for (size_t b = 0; b < options_.batch_edges; ++b) {
      const auto& e = edges[rng.UniformUint64(edges.size())];
      hu.push_back(emb(e.src));
      hv.push_back(emb(e.dst));
      labels.push_back(1.0f);
      for (size_t n = 0; n < options_.negatives_per_edge; ++n) {
        EdgeTriple neg = SampleNegativeEdge(g, e, rng);
        hu.push_back(emb(neg.src));
        hv.push_back(emb(neg.dst));
        labels.push_back(0.0f);
      }
    }
    ag::Var logits = ag::RowwiseDot(ag::ConcatRows(hu), ag::ConcatRows(hv));
    ag::Var loss = ag::BceWithLogits(logits, labels);
    ag::Backward(loss);
    optimizer.Step();
    optimizer.ZeroGrad();
  }

  Rng cache_rng(options_.seed ^ 0xBEEFED);
  embeddings_ = Tensor(g.num_nodes(), options_.dim);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ag::Var e = forward(v, cache_rng);
    const float* src = e->value.RowPtr(0);
    std::copy(src, src + options_.dim, embeddings_.RowPtr(v));
  }
  fitted_ = true;
  return Status::OK();
}

Tensor Magnn::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;
  return embeddings_.CopyRow(v);
}

}  // namespace hybridgnn
