#include "baselines/han.h"

#include <memory>
#include <unordered_map>

#include "baselines/common.h"
#include "common/logging.h"
#include "nn/aggregator.h"
#include "nn/embedding.h"
#include "nn/semantic_attention.h"
#include "nn/sparse.h"
#include "sampling/walker.h"
#include "tensor/optimizer.h"

namespace hybridgnn {

namespace {

/// Per-metapath node-level aggregation: mean of the final-level metapath-
/// guided neighbors combined with self (HAN's node-level attention is
/// approximated by its mean-field limit; the semantic level is exact).
ag::Var MetapathEmbed(const MultiplexHeteroGraph& g,
                      const MetapathScheme& scheme, NodeId v, size_t fanout,
                      const EmbeddingTable& features,
                      const MeanAggregator& agg, Rng& rng) {
  auto levels = MetapathGuidedNeighbors(g, scheme, v, fanout, rng);
  const auto& peers = levels.back().empty()
                          ? levels[levels.size() > 1 ? levels.size() - 2 : 0]
                          : levels.back();
  ag::Var self = features.ForwardNodes({v});
  if (peers.empty()) return self;
  // Single-segment frontier over the peers: fused gather + segment mean.
  static thread_local MinibatchFrontier frontier;
  frontier.Clear();
  for (NodeId u : peers) frontier.indices.push_back(static_cast<int32_t>(u));
  frontier.CloseSegment();
  ag::Var peer_rows = GatherRowsSegmented(features.table(), frontier);
  return agg.Forward(frontier, self, peer_rows);
}

}  // namespace

Status Han::Fit(const MultiplexHeteroGraph& g, const FitOptions& options) {
  (void)options;  // dense full-graph training; no parallel path yet
  const auto& edges = g.edges();
  if (edges.empty()) return Status::FailedPrecondition("HAN: no edges");
  for (const auto& s : schemes_) HYBRIDGNN_RETURN_IF_ERROR(s.Validate(g));
  Rng rng(options_.seed);
  EmbeddingTable features(g.num_nodes(), options_.dim, rng);
  std::vector<std::unique_ptr<MeanAggregator>> aggs;
  for (size_t i = 0; i < schemes_.size(); ++i) {
    aggs.push_back(std::make_unique<MeanAggregator>(options_.dim, rng));
  }
  SemanticAttention semantic(options_.dim, options_.semantic_hidden, rng);
  Adam optimizer(options_.learning_rate);
  optimizer.AddParameters(features.parameters());
  for (const auto& a : aggs) optimizer.AddParameters(a->parameters());
  optimizer.AddParameters(semantic.parameters());

  auto forward = [&](NodeId v, Rng& r) {
    std::vector<ag::Var> per_path;
    for (size_t i = 0; i < schemes_.size(); ++i) {
      if (schemes_[i].source_type() != g.node_type(v)) continue;
      per_path.push_back(MetapathEmbed(g, schemes_[i], v, options_.fanout,
                                       features, *aggs[i], r));
    }
    if (per_path.empty()) return features.ForwardNodes({v});
    if (per_path.size() == 1) return per_path[0];
    return semantic.Forward(ag::ConcatRows(per_path));
  };

  for (size_t step = 0; step < options_.steps; ++step) {
    std::unordered_map<NodeId, ag::Var> memo;
    auto emb = [&](NodeId v) {
      auto it = memo.find(v);
      if (it == memo.end()) it = memo.emplace(v, forward(v, rng)).first;
      return it->second;
    };
    std::vector<ag::Var> hu, hv;
    std::vector<float> labels;
    for (size_t b = 0; b < options_.batch_edges; ++b) {
      const auto& e = edges[rng.UniformUint64(edges.size())];
      hu.push_back(emb(e.src));
      hv.push_back(emb(e.dst));
      labels.push_back(1.0f);
      for (size_t n = 0; n < options_.negatives_per_edge; ++n) {
        EdgeTriple neg = SampleNegativeEdge(g, e, rng);
        hu.push_back(emb(neg.src));
        hv.push_back(emb(neg.dst));
        labels.push_back(0.0f);
      }
    }
    ag::Var logits = ag::RowwiseDot(ag::ConcatRows(hu), ag::ConcatRows(hv));
    ag::Var loss = ag::BceWithLogits(logits, labels);
    ag::Backward(loss);
    optimizer.Step();
    optimizer.ZeroGrad();
  }

  Rng cache_rng(options_.seed ^ 0xFACADE);
  embeddings_ = Tensor(g.num_nodes(), options_.dim);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ag::Var e = forward(v, cache_rng);
    const float* src = e->value.RowPtr(0);
    std::copy(src, src + options_.dim, embeddings_.RowPtr(v));
  }
  fitted_ = true;
  return Status::OK();
}

Tensor Han::Embedding(NodeId v, RelationId r) const {
  HYBRIDGNN_CHECK(fitted_);
  (void)r;
  return embeddings_.CopyRow(v);
}

}  // namespace hybridgnn
