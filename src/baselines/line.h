#ifndef HYBRIDGNN_BASELINES_LINE_H_
#define HYBRIDGNN_BASELINES_LINE_H_

#include <string>

#include "baselines/common.h"
#include "eval/embedding_model.h"

namespace hybridgnn {

/// LINE (Tang et al., WWW 2015): first-order + second-order proximity via
/// edge sampling with negative sampling; the final embedding concatenates
/// the two halves. Relation-blind (edges pooled across relations).
class Line : public EmbeddingModel {
 public:
  struct Options {
    /// Total embedding width; each order gets dim/2.
    size_t dim = 128;
    size_t negatives = 5;
    float learning_rate = 0.025f;
    /// Edge samples per order = samples_per_edge * |E|.
    size_t samples_per_edge = 40;
    uint64_t seed = 13;
  };

  explicit Line(const Options& options) : options_(options) {}

  std::string name() const override { return "LINE"; }
  /// options.num_threads > 1 shards the edge-sample loop Hogwild-style
  /// (lock-free updates, per-worker sample streams); deterministic or
  /// single-threaded runs keep the original serial loop.
  Status Fit(const MultiplexHeteroGraph& g,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override;
  Tensor EmbeddingsFor(std::span<const std::pair<NodeId, RelationId>> queries)
      const override;

 private:
  Options options_;
  Tensor embeddings_;  // [V, dim] (first half order-1, second half order-2)
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_LINE_H_
