#ifndef HYBRIDGNN_BASELINES_HAN_H_
#define HYBRIDGNN_BASELINES_HAN_H_

#include <string>
#include <vector>

#include "eval/embedding_model.h"
#include "graph/metapath.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// HAN (Wang et al., WWW 2019): heterogeneous graph attention — per-metapath
/// neighbor aggregation (node level) fused by semantic-level attention.
/// Non-multiplex: it learns a single embedding per node (relation ignored),
/// which is exactly how the paper evaluates it. Trained with link BCE.
class Han : public EmbeddingModel {
 public:
  struct Options {
    size_t dim = 64;
    size_t semantic_hidden = 32;
    size_t fanout = 6;
    size_t steps = 80;
    size_t batch_edges = 128;
    size_t negatives_per_edge = 1;
    float learning_rate = 0.01f;
    uint64_t seed = 23;
  };

  Han(const Options& options, std::vector<MetapathScheme> schemes)
      : options_(options), schemes_(std::move(schemes)) {}

  std::string name() const override { return "HAN"; }
  Status Fit(const MultiplexHeteroGraph& g,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override;

 private:
  Options options_;
  std::vector<MetapathScheme> schemes_;
  Tensor embeddings_;
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_HAN_H_
