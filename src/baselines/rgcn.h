#ifndef HYBRIDGNN_BASELINES_RGCN_H_
#define HYBRIDGNN_BASELINES_RGCN_H_

#include <string>
#include <vector>

#include "eval/embedding_model.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// R-GCN (Schlichtkrull et al., ESWC 2018): two layers of relational graph
/// convolution, h^{l+1} = sigma(sum_r (1/c) A_r h^l W_r^l + h^l W_0^l), with
/// a DistMult decoder per relation — score_r(u,v) = h_u^T diag(w_r) h_v —
/// trained with cross-entropy against sampled negatives (the paper's
/// autoencoder formulation).
class Rgcn : public EmbeddingModel {
 public:
  struct Options {
    size_t input_dim = 32;
    size_t hidden_dim = 32;
    size_t output_dim = 32;
    size_t steps = 60;
    size_t batch_edges = 512;
    size_t negatives_per_edge = 1;
    float learning_rate = 0.01f;
    uint64_t seed = 31;
  };

  explicit Rgcn(const Options& options) : options_(options) {}

  std::string name() const override { return "R-GCN"; }
  Status Fit(const MultiplexHeteroGraph& g,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override;
  /// DistMult scoring (relation-specific even though Embedding is shared).
  double Score(NodeId u, NodeId v, RelationId r) const override;
  /// DistMult is not a dot of Embedding rows, so the batched default would
  /// diverge from Score; route every element through Score instead.
  std::vector<double> ScoreMany(
      std::span<const EdgeTriple> queries) const override;

 private:
  Options options_;
  Tensor embeddings_;      // [V, out]
  Tensor relation_diag_;   // [R, out]
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_RGCN_H_
