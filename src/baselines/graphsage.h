#ifndef HYBRIDGNN_BASELINES_GRAPHSAGE_H_
#define HYBRIDGNN_BASELINES_GRAPHSAGE_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "eval/embedding_model.h"
#include "nn/aggregator.h"
#include "nn/embedding.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// GraphSage (Hamilton et al., NeurIPS 2017): fan-out neighbor sampling +
/// mean aggregation, two layers, trained with link-prediction BCE.
/// Relation-blind (samples over the union of relations).
class GraphSage : public EmbeddingModel {
 public:
  struct Options {
    size_t dim = 64;
    size_t num_layers = 2;
    size_t fanout = 6;
    size_t steps = 80;
    size_t batch_edges = 128;
    size_t negatives_per_edge = 1;
    float learning_rate = 0.01f;
    uint64_t seed = 19;
  };

  explicit GraphSage(const Options& options) : options_(options) {}

  std::string name() const override { return "GraphSage"; }
  Status Fit(const MultiplexHeteroGraph& g,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override;

 private:
  ag::Var ForwardNode(const MultiplexHeteroGraph& g, NodeId v, Rng& rng,
                      const EmbeddingTable& features,
                      const MeanAggregator& agg) const;

  Options options_;
  Tensor embeddings_;
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_GRAPHSAGE_H_
