#ifndef HYBRIDGNN_BASELINES_MAGNN_H_
#define HYBRIDGNN_BASELINES_MAGNN_H_

#include <string>
#include <vector>

#include "eval/embedding_model.h"
#include "graph/metapath.h"
#include "tensor/tensor.h"

namespace hybridgnn {

/// MAGNN (Fu et al., WWW 2020): metapath-instance encoding. Each sampled
/// instance is encoded as the mean of *all* its node embeddings (including
/// intermediate nodes — the feature distinguishing MAGNN from HAN), fused by
/// intra-metapath mean pooling and inter-metapath semantic attention.
/// Non-multiplex, single embedding per node; trained with link BCE.
class Magnn : public EmbeddingModel {
 public:
  struct Options {
    size_t dim = 64;
    size_t semantic_hidden = 32;
    size_t instances_per_path = 6;
    size_t steps = 80;
    size_t batch_edges = 128;
    size_t negatives_per_edge = 1;
    float learning_rate = 0.01f;
    uint64_t seed = 29;
  };

  Magnn(const Options& options, std::vector<MetapathScheme> schemes)
      : options_(options), schemes_(std::move(schemes)) {}

  std::string name() const override { return "MAGNN"; }
  Status Fit(const MultiplexHeteroGraph& g,
             const FitOptions& options) override;
  using EmbeddingModel::Fit;
  Tensor Embedding(NodeId v, RelationId r) const override;

 private:
  Options options_;
  std::vector<MetapathScheme> schemes_;
  Tensor embeddings_;
  bool fitted_ = false;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_BASELINES_MAGNN_H_
