#ifndef HYBRIDGNN_KERNELS_KERNELS_H_
#define HYBRIDGNN_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace hybridgnn::kernels {

/// Runtime-dispatched dense float kernels backing the library's hot loops:
/// the Hogwild skip-gram inner loop (sampling/sgns.cc, baselines/line.cc),
/// blocked top-K candidate scoring (serve/topk.cc), the dense reductions in
/// tensor/tensor_ops.cc, and the frontier segment reductions / CSR SpMM
/// behind the sparse aggregation ops in nn/sparse.cc.
///
/// Two implementations exist behind one entry point each:
///   * kScalar — plain loops, semantically identical to the pre-kernel-layer
///     code. With HYBRIDGNN_KERNELS=scalar the whole library reproduces the
///     pre-SIMD results bit for bit (pinned by determinism_test).
///   * kAvx2   — AVX2+FMA vector loops, compiled only when the toolchain
///     supports -mavx2 -mfma and selected only when CPUID reports both.
///
/// The backend is resolved once, on first kernel call:
///   HYBRIDGNN_KERNELS=scalar   force the reference path
///   HYBRIDGNN_KERNELS=avx2     force AVX2 (falls back to scalar with a
///                              warning when the host cannot run it)
///   unset / anything else      auto-detect via CPUID
///
/// Equivalence contract between backends (enforced by tests/kernel_test.cc):
///   * Scale: bit-identical (one rounding per element on both paths).
///   * Axpy:  <= 1 ULP per element (the scalar path may or may not contract
///     mul+add into an FMA depending on compiler defaults).
///   * Dot / SgnsUpdateStep: reductions are reassociated by the vector
///     path, so results agree only to ULP-scaled tolerance (see
///     tests/kernel_test.cc and DESIGN.md §11 for the exact bounds).
///   * ScoreBlock: accumulates in double on both paths; backend drift is
///     bounded by double rounding of the partial sums (~1e-15 relative).
///   * SegmentSum / SegmentMean / SegmentMax / CsrSpmm: bit-identical. The
///     vector bodies accumulate each output element through the same
///     mul-then-add chain (in the same row order) as the scalar reference —
///     no FMA, no reassociation — so the frontier aggregation path produces
///     the same bits under either backend.
enum class Backend : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// "scalar" / "avx2".
const char* BackendName(Backend b);

/// True when the AVX2 implementation was compiled in AND the CPU reports
/// AVX2 and FMA support.
bool Avx2Available();

/// The backend every kernel entry point currently dispatches to.
Backend ActiveBackend();

/// Forces dispatch to `b` and returns the previously active backend.
/// CHECK-fails when forcing kAvx2 on a host without it. Intended for the
/// differential tests and the kernel micro-bench; not thread-safe with
/// respect to concurrent kernel calls.
Backend SetBackend(Backend b);

/// RAII backend override for tests: forces `b` on construction, restores
/// the previous backend on destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : previous_(SetBackend(b)) {}
  ~ScopedBackend() { SetBackend(previous_); }

  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend previous_;
};

/// sum_j a[j] * b[j], accumulated in float (word2vec-style training math).
float Dot(const float* a, const float* b, size_t n);

/// y[j] += alpha * x[j]. Safe on the Hogwild training path: both backend
/// implementations are TSan-uninstrumented (see kernels_scalar.cc).
void Axpy(float alpha, const float* x, float* y, size_t n);

/// x[j] *= alpha.
void Scale(float alpha, float* x, size_t n);

/// Fused SGNS sigmoid-gradient step (Eqs. 11-13 of the paper): computes
/// g = (sigmoid(e.c) - label) * lr, then e_grad[j] += g * c[j] and
/// c[j] -= g * e[j] in place. Returns g. The scalar path is the exact
/// pre-kernel-layer SgnsPush/LinePush loop.
float SgnsUpdateStep(const float* e, float* c, float* e_grad, size_t n,
                     float label, float lr);

/// Batched candidate scoring for top-K retrieval: out[i] = sum_j
/// query[j] * rows[i*n + j], accumulated in double. `rows` is `num_rows`
/// contiguous row-major rows of length n (an EmbeddingStore table slice).
void ScoreBlock(const float* query, const float* rows, size_t num_rows,
                size_t n, double* out);

/// ScoreBlock over an IEEE-754 binary16 row block: out[i] = sum_j
/// query[j] * f32(rows[i*n + j]), accumulated in double with the same
/// widening structure as ScoreBlock, so backend drift stays at
/// double-rounding scale. The AVX2 path uses F16C (gated by CPUID together
/// with AVX2/FMA); the scalar path converts through kernels/f16.h.
void ScoreBlockF16(const float* query, const uint16_t* rows, size_t num_rows,
                   size_t n, double* out);

/// ScoreBlock over per-row affine-quantized uint8 rows (the int8
/// EmbeddingStore payload): candidate element j of row i dequantizes as
/// zeros[i] + scales[i] * rows[i*n+j], so
///   out[i] = scales[i] * sum_j(query[j] * rows[i*n+j])
///          + zeros[i] * query_sum
/// with query_sum = sum_j query[j] precomputed once per query. The inner
/// sum accumulates in float (the vector path reassociates across lanes and
/// fuses mul+add), so backends agree to ULP-scaled tolerance, not bitwise;
/// the final affine step widens to double.
void ScoreBlockI8(const float* query, const uint8_t* rows,
                  const float* scales, const float* zeros, double query_sum,
                  size_t num_rows, size_t n, double* out);

/// Sentinel argmax value written by SegmentMax for empty segments.
inline constexpr uint32_t kNoSegmentRow = UINT32_MAX;

/// Segment reductions over a flat row-major block `x` [m, dim]: segment s
/// covers block rows [indptr[s], indptr[s+1]) and reduces to output row s,
/// so `out` is [num_segments, dim] and indptr has num_segments+1 entries
/// with indptr[0] == 0 and indptr[num_segments] == m. Empty segments
/// produce zero rows. SegmentSum accumulates rows in ascending row order
/// (the same chain as repeated Axpy(1.0f, row, acc)); SegmentMean applies
/// one final multiply by 1/len per element, reproducing the
/// SumRows-then-ScaleInPlace arithmetic of tensor_ops bit for bit.
void SegmentSum(const float* x, size_t dim, const size_t* indptr,
                size_t num_segments, float* out);
void SegmentMean(const float* x, size_t dim, const size_t* indptr,
                 size_t num_segments, float* out);

/// Per-column segment max with argmax: out[s*dim+j] is the max of column j
/// over segment s's rows and argmax[s*dim+j] the *block* row index that
/// attained it (strict `>` comparison, so ties keep the first row; NaN
/// inputs never displace the running max). Empty segments write 0.0f and
/// kNoSegmentRow.
void SegmentMax(const float* x, size_t dim, const size_t* indptr,
                size_t num_segments, float* out, uint32_t* argmax);

/// CSR sparse-dense matmul: y[r] += sum_e values[e] * x[indices[e]] over
/// e in [indptr[r], indptr[r+1]), with x and y row-major [*, dim].
/// Accumulates into y (callers pass a zeroed output); `values == nullptr`
/// means unit weights. Per-edge arithmetic is the exact Axpy-style
/// mul-then-add chain of the pre-kernel SpMM loop.
void CsrSpmm(const size_t* indptr, const uint32_t* indices,
             const float* values, size_t rows, const float* x, size_t dim,
             float* y);

/// ---- Fused elementwise chains (compiled-plan fusion targets) ----
///
/// The plan layer (src/plan) fuses single-consumer chains of elementwise
/// autograd ops — Scale / Sigmoid / Tanh / Relu / LogSigmoid — into one
/// kernel call described by a stage list. Per element, EwChainForward
/// applies the stages in order using the exact per-element expressions of
/// the unfused tensor_ops loops (one multiply for scale; libm for the
/// transcendentals), so a fused chain is bit-identical to the op sequence
/// it replaced on BOTH backends: the AVX2 path vectorizes scale (mulps) and
/// relu (maxps with the operand order that reproduces the scalar NaN/±0
/// behavior) and evaluates transcendental stages with per-lane scalar libm.
/// EwChainBackward recomputes the per-stage intermediates from `x` and
/// applies each stage's eager backward expression last-to-first:
///   scale      d' = d * alpha
///   sigmoid    d' = d * s * (1 - s)         (s = stage output)
///   tanh       d' = d * (1 - t * t)         (t = stage output)
///   relu       d' = v > 0 ? d : 0           (v = stage input)
///   logsigmoid d' = d / (1 + exp(v))        (v = stage input)
/// `out`/`dx` may alias `x`/`g`: every index-i read happens before the
/// index-i write.
enum class EwStageOp : uint8_t {
  kScale = 0,
  kSigmoid = 1,
  kTanh = 2,
  kRelu = 3,
  kLogSigmoid = 4,
};

struct EwStage {
  EwStageOp op;
  float alpha;  // kScale only
};

/// Longest fusable chain; the fusion pass never emits more stages.
inline constexpr size_t kMaxEwStages = 8;

void EwChainForward(const EwStage* stages, size_t num_stages, const float* x,
                    float* out, size_t n);
void EwChainBackward(const EwStage* stages, size_t num_stages, const float* x,
                     const float* g, float* dx, size_t n);

}  // namespace hybridgnn::kernels

#endif  // HYBRIDGNN_KERNELS_KERNELS_H_
