#ifndef HYBRIDGNN_KERNELS_KERNELS_H_
#define HYBRIDGNN_KERNELS_KERNELS_H_

#include <cstddef>

namespace hybridgnn::kernels {

/// Runtime-dispatched dense float kernels backing the library's hot loops:
/// the Hogwild skip-gram inner loop (sampling/sgns.cc, baselines/line.cc),
/// blocked top-K candidate scoring (serve/topk.cc), and the dense
/// reductions in tensor/tensor_ops.cc.
///
/// Two implementations exist behind one entry point each:
///   * kScalar — plain loops, semantically identical to the pre-kernel-layer
///     code. With HYBRIDGNN_KERNELS=scalar the whole library reproduces the
///     pre-SIMD results bit for bit (pinned by determinism_test).
///   * kAvx2   — AVX2+FMA vector loops, compiled only when the toolchain
///     supports -mavx2 -mfma and selected only when CPUID reports both.
///
/// The backend is resolved once, on first kernel call:
///   HYBRIDGNN_KERNELS=scalar   force the reference path
///   HYBRIDGNN_KERNELS=avx2     force AVX2 (falls back to scalar with a
///                              warning when the host cannot run it)
///   unset / anything else      auto-detect via CPUID
///
/// Equivalence contract between backends (enforced by tests/kernel_test.cc):
///   * Scale: bit-identical (one rounding per element on both paths).
///   * Axpy:  <= 1 ULP per element (the scalar path may or may not contract
///     mul+add into an FMA depending on compiler defaults).
///   * Dot / SgnsUpdateStep: reductions are reassociated by the vector
///     path, so results agree only to ULP-scaled tolerance (see
///     tests/kernel_test.cc and DESIGN.md §11 for the exact bounds).
///   * ScoreBlock: accumulates in double on both paths; backend drift is
///     bounded by double rounding of the partial sums (~1e-15 relative).
enum class Backend : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// "scalar" / "avx2".
const char* BackendName(Backend b);

/// True when the AVX2 implementation was compiled in AND the CPU reports
/// AVX2 and FMA support.
bool Avx2Available();

/// The backend every kernel entry point currently dispatches to.
Backend ActiveBackend();

/// Forces dispatch to `b` and returns the previously active backend.
/// CHECK-fails when forcing kAvx2 on a host without it. Intended for the
/// differential tests and the kernel micro-bench; not thread-safe with
/// respect to concurrent kernel calls.
Backend SetBackend(Backend b);

/// RAII backend override for tests: forces `b` on construction, restores
/// the previous backend on destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : previous_(SetBackend(b)) {}
  ~ScopedBackend() { SetBackend(previous_); }

  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend previous_;
};

/// sum_j a[j] * b[j], accumulated in float (word2vec-style training math).
float Dot(const float* a, const float* b, size_t n);

/// y[j] += alpha * x[j]. Safe on the Hogwild training path: both backend
/// implementations are TSan-uninstrumented (see kernels_scalar.cc).
void Axpy(float alpha, const float* x, float* y, size_t n);

/// x[j] *= alpha.
void Scale(float alpha, float* x, size_t n);

/// Fused SGNS sigmoid-gradient step (Eqs. 11-13 of the paper): computes
/// g = (sigmoid(e.c) - label) * lr, then e_grad[j] += g * c[j] and
/// c[j] -= g * e[j] in place. Returns g. The scalar path is the exact
/// pre-kernel-layer SgnsPush/LinePush loop.
float SgnsUpdateStep(const float* e, float* c, float* e_grad, size_t n,
                     float label, float lr);

/// Batched candidate scoring for top-K retrieval: out[i] = sum_j
/// query[j] * rows[i*n + j], accumulated in double. `rows` is `num_rows`
/// contiguous row-major rows of length n (an EmbeddingStore table slice).
void ScoreBlock(const float* query, const float* rows, size_t num_rows,
                size_t n, double* out);

}  // namespace hybridgnn::kernels

#endif  // HYBRIDGNN_KERNELS_KERNELS_H_
