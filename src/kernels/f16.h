#ifndef HYBRIDGNN_KERNELS_F16_H_
#define HYBRIDGNN_KERNELS_F16_H_

#include <cstdint>
#include <cstring>

// Portable IEEE-754 binary16 <-> binary32 conversion used by the fp16
// quantized embedding store (serve/embedding_store.cc) and the scalar
// ScoreBlockF16 kernel. The float -> half direction rounds to nearest,
// ties to even — the same rounding the F16C hardware path
// (_mm256_cvtps_ph with _MM_FROUND_TO_NEAREST_INT) performs, so a store
// quantized here scores identically under either kernel backend.
namespace hybridgnn::kernels {

namespace internal {

/// v >> shift with round-to-nearest, ties to even.
inline uint32_t RoundShiftRne(uint32_t v, uint32_t shift) {
  const uint32_t half = 1u << (shift - 1);
  const uint32_t rem = v & ((1u << shift) - 1u);
  uint32_t q = v >> shift;
  if (rem > half || (rem == half && (q & 1u))) ++q;
  return q;
}

}  // namespace internal

inline uint16_t F32ToF16(float value) {
  uint32_t x;
  std::memcpy(&x, &value, sizeof(x));
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  const uint32_t abs = x & 0x7FFFFFFFu;
  if (abs >= 0x7F800000u) {  // Inf / NaN
    return sign | (abs > 0x7F800000u ? 0x7E00u : 0x7C00u);
  }
  if (abs >= 0x47800000u) return sign | 0x7C00u;  // >= 65520 rounds to Inf
  if (abs < 0x38800000u) {  // subnormal half (or zero)
    if (abs < 0x33000000u) return sign;  // < 2^-25 rounds to +-0
    const uint32_t sig = (abs & 0x7FFFFFu) | 0x800000u;
    const uint32_t shift = 126u - (abs >> 23);  // in [14, 24]
    return sign | static_cast<uint16_t>(internal::RoundShiftRne(sig, shift));
  }
  // Normal half: rebias the exponent and round 23 -> 10 mantissa bits as
  // one integer shift — a mantissa carry propagates into the exponent
  // (and, at 65520, correctly on to Inf).
  return sign |
         static_cast<uint16_t>(internal::RoundShiftRne(abs - (112u << 23), 13));
}

inline float F16ToF32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  const uint32_t mant = h & 0x3FFu;
  uint32_t bits;
  if (exp == 0x1Fu) {
    bits = sign | 0x7F800000u | (mant << 13);  // Inf / NaN
  } else if (exp != 0) {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant == 0) {
    bits = sign;  // +-0
  } else {
    // Subnormal half: value = mant * 2^-24; normalize into a float.
    const uint32_t b = 31u - static_cast<uint32_t>(__builtin_clz(mant));
    bits = sign | ((103u + b) << 23) | ((mant << (23u - b)) & 0x7FFFFFu);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace hybridgnn::kernels

#endif  // HYBRIDGNN_KERNELS_F16_H_
