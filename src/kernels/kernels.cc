#include "kernels/kernels.h"

#include <atomic>

#include "common/env.h"
#include "common/logging.h"
#include "kernels/kernels_impl.h"

namespace hybridgnn::kernels {

namespace {

using internal::Avx2Ops;
using internal::KernelOps;
using internal::ScalarOps;

struct Selected {
  const KernelOps* ops;
  Backend backend;
};

Selected Select() {
  const std::string want = GetEnvString("HYBRIDGNN_KERNELS", "");
  if (want == "scalar") return {&ScalarOps(), Backend::kScalar};
  if (want == "avx2") {
    if (const KernelOps* ops = Avx2Ops()) return {ops, Backend::kAvx2};
    HYBRIDGNN_LOG(Warning)
        << "HYBRIDGNN_KERNELS=avx2 requested but this host cannot run the "
           "AVX2 kernels; falling back to scalar";
    return {&ScalarOps(), Backend::kScalar};
  }
  if (!want.empty()) {
    HYBRIDGNN_LOG(Warning) << "unknown HYBRIDGNN_KERNELS value '" << want
                           << "' (expected scalar|avx2); auto-detecting";
  }
  if (const KernelOps* ops = Avx2Ops()) return {ops, Backend::kAvx2};
  return {&ScalarOps(), Backend::kScalar};
}

/// One-time env/CPUID resolution on first kernel call. The ops pointer and
/// backend tag are stored separately but always updated together; relaxed
/// ordering is fine because both targets are immutable statics.
std::atomic<const KernelOps*> g_ops{nullptr};
std::atomic<int> g_backend{static_cast<int>(Backend::kScalar)};

const KernelOps& Active() {
  const KernelOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    const Selected s = Select();
    // One line naming the resolved backend and every entry point it covers,
    // so a training log records which dispatch the run actually used.
    HYBRIDGNN_LOG(Info)
        << "kernels: dispatching to '" << BackendName(s.backend)
        << "' backend (dot, axpy, scale, sgns_update_step, score_block, "
           "score_block_f16, score_block_i8, segment_sum, segment_mean, "
           "segment_max, csr_spmm, ew_chain_fwd, ew_chain_bwd)";
    g_backend.store(static_cast<int>(s.backend), std::memory_order_relaxed);
    g_ops.store(s.ops, std::memory_order_release);
    ops = s.ops;
  }
  return *ops;
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2Available() { return Avx2Ops() != nullptr; }

Backend ActiveBackend() {
  Active();  // ensure resolved
  return static_cast<Backend>(g_backend.load(std::memory_order_relaxed));
}

Backend SetBackend(Backend b) {
  const Backend previous = ActiveBackend();
  const KernelOps* ops = nullptr;
  if (b == Backend::kScalar) {
    ops = &ScalarOps();
  } else {
    ops = Avx2Ops();
    HYBRIDGNN_CHECK(ops != nullptr)
        << "SetBackend(kAvx2): AVX2 kernels unavailable on this host";
  }
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
  g_ops.store(ops, std::memory_order_release);
  return previous;
}

float Dot(const float* a, const float* b, size_t n) {
  return Active().dot(a, b, n);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  Active().axpy(alpha, x, y, n);
}

void Scale(float alpha, float* x, size_t n) { Active().scale(alpha, x, n); }

float SgnsUpdateStep(const float* e, float* c, float* e_grad, size_t n,
                     float label, float lr) {
  return Active().sgns_update_step(e, c, e_grad, n, label, lr);
}

void ScoreBlock(const float* query, const float* rows, size_t num_rows,
                size_t n, double* out) {
  Active().score_block(query, rows, num_rows, n, out);
}

void ScoreBlockF16(const float* query, const uint16_t* rows, size_t num_rows,
                   size_t n, double* out) {
  Active().score_block_f16(query, rows, num_rows, n, out);
}

void ScoreBlockI8(const float* query, const uint8_t* rows,
                  const float* scales, const float* zeros, double query_sum,
                  size_t num_rows, size_t n, double* out) {
  Active().score_block_i8(query, rows, scales, zeros, query_sum, num_rows, n,
                          out);
}

void SegmentSum(const float* x, size_t dim, const size_t* indptr,
                size_t num_segments, float* out) {
  Active().segment_sum(x, dim, indptr, num_segments, out);
}

void SegmentMean(const float* x, size_t dim, const size_t* indptr,
                 size_t num_segments, float* out) {
  Active().segment_mean(x, dim, indptr, num_segments, out);
}

void SegmentMax(const float* x, size_t dim, const size_t* indptr,
                size_t num_segments, float* out, uint32_t* argmax) {
  Active().segment_max(x, dim, indptr, num_segments, out, argmax);
}

void CsrSpmm(const size_t* indptr, const uint32_t* indices,
             const float* values, size_t rows, const float* x, size_t dim,
             float* y) {
  Active().csr_spmm(indptr, indices, values, rows, x, dim, y);
}

void EwChainForward(const EwStage* stages, size_t num_stages, const float* x,
                    float* out, size_t n) {
  Active().ew_chain_fwd(stages, num_stages, x, out, n);
}

void EwChainBackward(const EwStage* stages, size_t num_stages, const float* x,
                     const float* g, float* dx, size_t n) {
  Active().ew_chain_bwd(stages, num_stages, x, g, dx, n);
}

#if !defined(HYBRIDGNN_KERNELS_HAVE_AVX2)
namespace internal {
// kernels_avx2.cc was not built (non-x86 target or a compiler without
// -mavx2/-mfma): graceful scalar fallback instead of a build failure.
const KernelOps* Avx2Ops() { return nullptr; }
}  // namespace internal
#endif

}  // namespace hybridgnn::kernels
