// Scalar reference implementation of the kernel layer. These loops are the
// exact pre-kernel-layer hot loops moved out of sgns.cc / line.cc / topk.cc
// / tensor_ops.cc, so HYBRIDGNN_KERNELS=scalar reproduces the pre-SIMD
// library bit for bit (pinned by determinism_test's golden vectors). Do not
// "improve" the arithmetic here — reorderings change results and break the
// reproducibility contract; speed work belongs in kernels_avx2.cc.
#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "kernels/f16.h"
#include "kernels/kernels.h"
#include "kernels/kernels_impl.h"

namespace hybridgnn::kernels::internal {

namespace {

float DotScalar(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t j = 0; j < n; ++j) s += a[j] * b[j];
  return s;
}

// Runs inside the Hogwild SGNS/LINE update path where workers race on
// embedding rows by design, so it must stay TSan-uninstrumented (see
// common/parallel.h).
HYBRIDGNN_NO_SANITIZE_THREAD
void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t j = 0; j < n; ++j) y[j] += alpha * x[j];
}

void ScaleScalar(float alpha, float* x, size_t n) {
  for (size_t j = 0; j < n; ++j) x[j] *= alpha;
}

// The pre-kernel-layer SgnsPush/LinePush body, verbatim. Benign Hogwild
// races on `c` (and reads of `e`) by design.
HYBRIDGNN_NO_SANITIZE_THREAD
float SgnsUpdateStepScalar(const float* e, float* c, float* e_grad, size_t n,
                           float label, float lr) {
  float dot = 0.0f;
  for (size_t j = 0; j < n; ++j) dot += e[j] * c[j];
  const float sig = 1.0f / (1.0f + std::exp(-dot));
  const float g = (sig - label) * lr;
  for (size_t j = 0; j < n; ++j) {
    e_grad[j] += g * c[j];
    c[j] -= g * e[j];
  }
  return g;
}

void ScoreBlockScalar(const float* query, const float* rows, size_t num_rows,
                      size_t n, double* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    const float* row = rows + i * n;
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) {
      s += static_cast<double>(query[j]) * row[j];
    }
    out[i] = s;
  }
}

void ScoreBlockF16Scalar(const float* query, const uint16_t* rows,
                         size_t num_rows, size_t n, double* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    const uint16_t* row = rows + i * n;
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) {
      s += static_cast<double>(query[j]) *
           static_cast<double>(F16ToF32(row[j]));
    }
    out[i] = s;
  }
}

void ScoreBlockI8Scalar(const float* query, const uint8_t* rows,
                        const float* scales, const float* zeros,
                        double query_sum, size_t num_rows, size_t n,
                        double* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    const uint8_t* row = rows + i * n;
    float acc = 0.0f;
    for (size_t j = 0; j < n; ++j) {
      acc += query[j] * static_cast<float>(row[j]);
    }
    out[i] = static_cast<double>(scales[i]) * static_cast<double>(acc) +
             static_cast<double>(zeros[i]) * query_sum;
  }
}

// Segment reductions. SegmentSum's per-element chain (zero, then += in
// ascending row order) and SegmentMean's trailing *= 1/len replicate the
// SumRows-then-ScaleInPlace composition the aggregation path used before
// the frontier redesign, so determinism_test's goldens still pin it.
void SegmentSumScalar(const float* x, size_t dim, const size_t* indptr,
                      size_t num_segments, float* out) {
  for (size_t s = 0; s < num_segments; ++s) {
    float* o = out + s * dim;
    for (size_t j = 0; j < dim; ++j) o[j] = 0.0f;
    for (size_t r = indptr[s]; r < indptr[s + 1]; ++r) {
      const float* row = x + r * dim;
      for (size_t j = 0; j < dim; ++j) o[j] += row[j];
    }
  }
}

void SegmentMeanScalar(const float* x, size_t dim, const size_t* indptr,
                       size_t num_segments, float* out) {
  SegmentSumScalar(x, dim, indptr, num_segments, out);
  for (size_t s = 0; s < num_segments; ++s) {
    const size_t len = indptr[s + 1] - indptr[s];
    if (len == 0) continue;
    const float inv = 1.0f / static_cast<float>(len);
    float* o = out + s * dim;
    for (size_t j = 0; j < dim; ++j) o[j] *= inv;
  }
}

void SegmentMaxScalar(const float* x, size_t dim, const size_t* indptr,
                      size_t num_segments, float* out, uint32_t* argmax) {
  for (size_t s = 0; s < num_segments; ++s) {
    float* o = out + s * dim;
    uint32_t* a = argmax + s * dim;
    const size_t lo = indptr[s];
    const size_t hi = indptr[s + 1];
    if (lo == hi) {
      for (size_t j = 0; j < dim; ++j) {
        o[j] = 0.0f;
        a[j] = kNoSegmentRow;
      }
      continue;
    }
    const float* first = x + lo * dim;
    for (size_t j = 0; j < dim; ++j) {
      o[j] = first[j];
      a[j] = static_cast<uint32_t>(lo);
    }
    for (size_t r = lo + 1; r < hi; ++r) {
      const float* row = x + r * dim;
      for (size_t j = 0; j < dim; ++j) {
        // Strict > keeps the first row on ties and never lets NaN displace
        // the running max.
        if (row[j] > o[j]) {
          o[j] = row[j];
          a[j] = static_cast<uint32_t>(r);
        }
      }
    }
  }
}

// The exact per-edge loop SpDense (nn/sparse.cc) ran before the kernel
// routing: one mul-then-add per element, edges in CSR order.
void CsrSpmmScalar(const size_t* indptr, const uint32_t* indices,
                   const float* values, size_t rows, const float* x,
                   size_t dim, float* y) {
  for (size_t r = 0; r < rows; ++r) {
    float* yr = y + r * dim;
    for (size_t e = indptr[r]; e < indptr[r + 1]; ++e) {
      const float w = values != nullptr ? values[e] : 1.0f;
      const float* xr = x + indices[e] * dim;
      for (size_t j = 0; j < dim; ++j) yr[j] += w * xr[j];
    }
  }
}

// Fused elementwise chain (plan-layer fusion target). Each stage applies
// the exact per-element expression of the unfused tensor_ops loop it
// replaces, so fused == unfused bit for bit.
inline float EwApplyStage(const EwStage& s, float v) {
  switch (s.op) {
    case EwStageOp::kScale:
      return v * s.alpha;
    case EwStageOp::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case EwStageOp::kTanh:
      return std::tanh(v);
    case EwStageOp::kRelu:
      return v > 0.0f ? v : 0.0f;
    case EwStageOp::kLogSigmoid:
      return std::min(v, 0.0f) - std::log1p(std::exp(-std::abs(v)));
  }
  return v;
}

void EwChainForwardScalar(const EwStage* stages, size_t num_stages,
                          const float* x, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    float v = x[i];
    for (size_t s = 0; s < num_stages; ++s) v = EwApplyStage(stages[s], v);
    out[i] = v;
  }
}

// Recomputes the stage intermediates from x, then walks the stages
// last-to-first applying each op's eager backward expression (autograd.cc's
// closure bodies, verbatim per element).
void EwChainBackwardScalar(const EwStage* stages, size_t num_stages,
                           const float* x, const float* g, float* dx,
                           size_t n) {
  for (size_t i = 0; i < n; ++i) {
    float v[kMaxEwStages + 1];
    v[0] = x[i];
    for (size_t s = 0; s < num_stages; ++s) {
      v[s + 1] = EwApplyStage(stages[s], v[s]);
    }
    float d = g[i];
    for (size_t s = num_stages; s-- > 0;) {
      switch (stages[s].op) {
        case EwStageOp::kScale:
          d = d * stages[s].alpha;
          break;
        case EwStageOp::kSigmoid:
          d = d * v[s + 1] * (1.0f - v[s + 1]);
          break;
        case EwStageOp::kTanh:
          d = d * (1.0f - v[s + 1] * v[s + 1]);
          break;
        case EwStageOp::kRelu:
          d = v[s] > 0.0f ? d : 0.0f;
          break;
        case EwStageOp::kLogSigmoid:
          d = d / (1.0f + std::exp(v[s]));
          break;
      }
    }
    dx[i] = d;
  }
}

}  // namespace

const KernelOps& ScalarOps() {
  static const KernelOps ops = {
      DotScalar, AxpyScalar, ScaleScalar, SgnsUpdateStepScalar,
      ScoreBlockScalar, ScoreBlockF16Scalar, ScoreBlockI8Scalar,
      SegmentSumScalar, SegmentMeanScalar, SegmentMaxScalar,
      CsrSpmmScalar, EwChainForwardScalar, EwChainBackwardScalar,
  };
  return ops;
}

}  // namespace hybridgnn::kernels::internal
