// Scalar reference implementation of the kernel layer. These loops are the
// exact pre-kernel-layer hot loops moved out of sgns.cc / line.cc / topk.cc
// / tensor_ops.cc, so HYBRIDGNN_KERNELS=scalar reproduces the pre-SIMD
// library bit for bit (pinned by determinism_test's golden vectors). Do not
// "improve" the arithmetic here — reorderings change results and break the
// reproducibility contract; speed work belongs in kernels_avx2.cc.
#include <cmath>

#include "common/parallel.h"
#include "kernels/kernels_impl.h"

namespace hybridgnn::kernels::internal {

namespace {

float DotScalar(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t j = 0; j < n; ++j) s += a[j] * b[j];
  return s;
}

// Runs inside the Hogwild SGNS/LINE update path where workers race on
// embedding rows by design, so it must stay TSan-uninstrumented (see
// common/parallel.h).
HYBRIDGNN_NO_SANITIZE_THREAD
void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t j = 0; j < n; ++j) y[j] += alpha * x[j];
}

void ScaleScalar(float alpha, float* x, size_t n) {
  for (size_t j = 0; j < n; ++j) x[j] *= alpha;
}

// The pre-kernel-layer SgnsPush/LinePush body, verbatim. Benign Hogwild
// races on `c` (and reads of `e`) by design.
HYBRIDGNN_NO_SANITIZE_THREAD
float SgnsUpdateStepScalar(const float* e, float* c, float* e_grad, size_t n,
                           float label, float lr) {
  float dot = 0.0f;
  for (size_t j = 0; j < n; ++j) dot += e[j] * c[j];
  const float sig = 1.0f / (1.0f + std::exp(-dot));
  const float g = (sig - label) * lr;
  for (size_t j = 0; j < n; ++j) {
    e_grad[j] += g * c[j];
    c[j] -= g * e[j];
  }
  return g;
}

void ScoreBlockScalar(const float* query, const float* rows, size_t num_rows,
                      size_t n, double* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    const float* row = rows + i * n;
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) {
      s += static_cast<double>(query[j]) * row[j];
    }
    out[i] = s;
  }
}

}  // namespace

const KernelOps& ScalarOps() {
  static const KernelOps ops = {
      DotScalar, AxpyScalar, ScaleScalar, SgnsUpdateStepScalar,
      ScoreBlockScalar,
  };
  return ops;
}

}  // namespace hybridgnn::kernels::internal
