// AVX2+FMA implementation of the kernel layer. This translation unit is
// compiled with -mavx2 -mfma -ffp-contract=off (see CMakeLists.txt):
// the AVX2 flags let us use 256-bit intrinsics, and contraction is disabled
// so the scalar tail loops below perform exactly the same mul-then-add
// sequence as kernels_scalar.cc — every FMA in this file is an explicit
// intrinsic, never a compiler rewrite.
//
// Equivalence with the scalar backend (enforced by tests/kernel_test.cc):
// Axpy/Scale are element-wise with one rounding per element, so they match
// bit for bit; Dot and SgnsUpdateStep reassociate the float reduction
// across lanes and fuse mul+add, so they agree to ULP-scaled tolerance;
// ScoreBlock widens to double before accumulating, keeping backend drift at
// double-rounding scale even for long rows.
#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "kernels/f16.h"
#include "kernels/kernels.h"
#include "kernels/kernels_impl.h"

namespace hybridgnn::kernels::internal {

namespace {

/// Horizontal sum of 8 floats, in a fixed (lane-pairing) order.
float Hsum256(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

/// Horizontal sum of 4 doubles.
double Hsum256d(__m256d v) {
  __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                         _mm256_extractf128_pd(v, 1));
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8),
                           _mm256_loadu_ps(b + j + 8), acc1);
  }
  if (j + 8 <= n) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j), _mm256_loadu_ps(b + j),
                           acc0);
    j += 8;
  }
  float s = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; j < n; ++j) s += a[j] * b[j];
  return s;
}

// TSan-uninstrumented: runs on the Hogwild path (see kernels_scalar.cc).
HYBRIDGNN_NO_SANITIZE_THREAD
void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t j = 0;
  // Deliberately mul + add (not fmadd): one rounding per step, exactly the
  // scalar backend's arithmetic, so Axpy stays bit-identical across
  // backends.
  for (; j + 8 <= n; j += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + j));
    _mm256_storeu_ps(y + j, _mm256_add_ps(_mm256_loadu_ps(y + j), prod));
  }
  for (; j < n; ++j) y[j] += alpha * x[j];
}

void ScaleAvx2(float alpha, float* x, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(x + j, _mm256_mul_ps(va, _mm256_loadu_ps(x + j)));
  }
  for (; j < n; ++j) x[j] *= alpha;
}

HYBRIDGNN_NO_SANITIZE_THREAD
float SgnsUpdateStepAvx2(const float* e, float* c, float* e_grad, size_t n,
                         float label, float lr) {
  const float dot = DotAvx2(e, c, n);
  const float sig = 1.0f / (1.0f + std::exp(-dot));
  const float g = (sig - label) * lr;
  const __m256 vg = _mm256_set1_ps(g);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vc = _mm256_loadu_ps(c + j);
    const __m256 ve = _mm256_loadu_ps(e + j);
    _mm256_storeu_ps(e_grad + j,
                     _mm256_fmadd_ps(vg, vc, _mm256_loadu_ps(e_grad + j)));
    _mm256_storeu_ps(c + j, _mm256_fnmadd_ps(vg, ve, vc));
  }
  for (; j < n; ++j) {
    e_grad[j] += g * c[j];
    c[j] -= g * e[j];
  }
  return g;
}

void ScoreBlockAvx2(const float* query, const float* rows, size_t num_rows,
                    size_t n, double* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    const float* row = rows + i * n;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 q = _mm256_loadu_ps(query + j);
      const __m256 r = _mm256_loadu_ps(row + j);
      acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(q)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(r)),
                             acc0);
      acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(q, 1)),
                             _mm256_cvtps_pd(_mm256_extractf128_ps(r, 1)),
                             acc1);
    }
    double s = Hsum256d(_mm256_add_pd(acc0, acc1));
    for (; j < n; ++j) s += static_cast<double>(query[j]) * row[j];
    out[i] = s;
  }
}

// Dequant-and-score over half-precision rows: 8 halves expand to 8 floats
// with one F16C instruction, then accumulate through the same
// double-widening fmadd structure as ScoreBlockAvx2 (backend drift stays at
// double-rounding scale; the hardware f16->f32 conversion is exact). The
// scalar tail converts through kernels/f16.h, which produces the same bits
// as VCVTPH2PS.
void ScoreBlockF16Avx2(const float* query, const uint16_t* rows,
                       size_t num_rows, size_t n, double* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    const uint16_t* row = rows + i * n;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 q = _mm256_loadu_ps(query + j);
      const __m256 r = _mm256_cvtph_ps(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + j)));
      acc0 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(q)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(r)),
                             acc0);
      acc1 = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(q, 1)),
                             _mm256_cvtps_pd(_mm256_extractf128_ps(r, 1)),
                             acc1);
    }
    double s = Hsum256d(_mm256_add_pd(acc0, acc1));
    for (; j < n; ++j) {
      s += static_cast<double>(query[j]) *
           static_cast<double>(F16ToF32(row[j]));
    }
    out[i] = s;
  }
}

// Dequant-and-score over per-row affine uint8 rows. The affine transform
// factors out of the dot product (see kernels.h), so the inner loop is a
// pure query x u8-row product: 8 bytes widen to 8 floats and fmadd into a
// float accumulator. The float reduction reassociates across lanes, so
// backends agree to ULP-scaled tolerance (same contract as Dot).
void ScoreBlockI8Avx2(const float* query, const uint8_t* rows,
                      const float* scales, const float* zeros,
                      double query_sum, size_t num_rows, size_t n,
                      double* out) {
  for (size_t i = 0; i < num_rows; ++i) {
    const uint8_t* row = rows + i * n;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      const __m256 r0 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + j))));
      const __m256 r1 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + j + 8))));
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(query + j), r0, acc0);
      acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(query + j + 8), r1, acc1);
    }
    if (j + 8 <= n) {
      const __m256 r0 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + j))));
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(query + j), r0, acc0);
      j += 8;
    }
    float acc = Hsum256(_mm256_add_ps(acc0, acc1));
    for (; j < n; ++j) acc += query[j] * static_cast<float>(row[j]);
    out[i] = static_cast<double>(scales[i]) * static_cast<double>(acc) +
             static_cast<double>(zeros[i]) * query_sum;
  }
}

// Segment reductions and CSR SpMM stay bit-identical to the scalar backend:
// each output element is produced by the same add (and trailing multiply)
// chain in the same row order — the vector loops only batch 8 independent
// columns per instruction, which never reassociates a chain. No FMA
// anywhere in these four kernels.
void SegmentSumAvx2(const float* x, size_t dim, const size_t* indptr,
                    size_t num_segments, float* out) {
  for (size_t s = 0; s < num_segments; ++s) {
    float* o = out + s * dim;
    const size_t lo = indptr[s];
    const size_t hi = indptr[s + 1];
    size_t j = 0;
    for (; j + 8 <= dim; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (size_t r = lo; r < hi; ++r) {
        acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + r * dim + j));
      }
      _mm256_storeu_ps(o + j, acc);
    }
    for (; j < dim; ++j) {
      float acc = 0.0f;
      for (size_t r = lo; r < hi; ++r) acc += x[r * dim + j];
      o[j] = acc;
    }
  }
}

void SegmentMeanAvx2(const float* x, size_t dim, const size_t* indptr,
                     size_t num_segments, float* out) {
  SegmentSumAvx2(x, dim, indptr, num_segments, out);
  for (size_t s = 0; s < num_segments; ++s) {
    const size_t len = indptr[s + 1] - indptr[s];
    if (len == 0) continue;
    ScaleAvx2(1.0f / static_cast<float>(len), out + s * dim, dim);
  }
}

void SegmentMaxAvx2(const float* x, size_t dim, const size_t* indptr,
                    size_t num_segments, float* out, uint32_t* argmax) {
  for (size_t s = 0; s < num_segments; ++s) {
    float* o = out + s * dim;
    uint32_t* a = argmax + s * dim;
    const size_t lo = indptr[s];
    const size_t hi = indptr[s + 1];
    if (lo == hi) {
      for (size_t j = 0; j < dim; ++j) {
        o[j] = 0.0f;
        a[j] = kNoSegmentRow;
      }
      continue;
    }
    size_t j = 0;
    for (; j + 8 <= dim; j += 8) {
      __m256 vmax = _mm256_loadu_ps(x + lo * dim + j);
      __m256i vidx = _mm256_set1_epi32(static_cast<int>(lo));
      for (size_t r = lo + 1; r < hi; ++r) {
        const __m256 v = _mm256_loadu_ps(x + r * dim + j);
        // Strict >, ordered: NaN never displaces the running max, matching
        // the scalar backend's `if (v > max)`.
        const __m256 gt = _mm256_cmp_ps(v, vmax, _CMP_GT_OQ);
        vmax = _mm256_blendv_ps(vmax, v, gt);
        vidx = _mm256_blendv_epi8(vidx,
                                  _mm256_set1_epi32(static_cast<int>(r)),
                                  _mm256_castps_si256(gt));
      }
      _mm256_storeu_ps(o + j, vmax);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + j), vidx);
    }
    for (; j < dim; ++j) {
      float m = x[lo * dim + j];
      uint32_t arg = static_cast<uint32_t>(lo);
      for (size_t r = lo + 1; r < hi; ++r) {
        const float v = x[r * dim + j];
        if (v > m) {
          m = v;
          arg = static_cast<uint32_t>(r);
        }
      }
      o[j] = m;
      a[j] = arg;
    }
  }
}

void CsrSpmmAvx2(const size_t* indptr, const uint32_t* indices,
                 const float* values, size_t rows, const float* x, size_t dim,
                 float* y) {
  for (size_t r = 0; r < rows; ++r) {
    float* yr = y + r * dim;
    for (size_t e = indptr[r]; e < indptr[r + 1]; ++e) {
      const float w = values != nullptr ? values[e] : 1.0f;
      const float* xr = x + static_cast<size_t>(indices[e]) * dim;
      const __m256 vw = _mm256_set1_ps(w);
      size_t j = 0;
      // mul + add, not fmadd: one rounding per step, the scalar chain.
      for (; j + 8 <= dim; j += 8) {
        const __m256 prod = _mm256_mul_ps(vw, _mm256_loadu_ps(xr + j));
        _mm256_storeu_ps(yr + j,
                         _mm256_add_ps(_mm256_loadu_ps(yr + j), prod));
      }
      for (; j < dim; ++j) yr[j] += w * xr[j];
    }
  }
}

// Fused elementwise chains. Scale vectorizes with mulps (one rounding per
// element, the scalar expression exactly) and relu with maxps — the operand
// order `max(v, 0)` returns the second source on NaN, matching the scalar
// `v > 0 ? v : 0` (NaN -> 0), and max(-0, +0) = +0 matches too. The
// transcendental stages (sigmoid/tanh/logsigmoid) and the whole backward go
// through the same per-element scalar-libm code as kernels_scalar.cc, so
// fused chains stay bit-identical across backends.
inline float EwApplyStageScalar(const EwStage& s, float v) {
  switch (s.op) {
    case EwStageOp::kScale:
      return v * s.alpha;
    case EwStageOp::kSigmoid:
      return 1.0f / (1.0f + std::exp(-v));
    case EwStageOp::kTanh:
      return std::tanh(v);
    case EwStageOp::kRelu:
      return v > 0.0f ? v : 0.0f;
    case EwStageOp::kLogSigmoid:
      return std::min(v, 0.0f) - std::log1p(std::exp(-std::abs(v)));
  }
  return v;
}

void EwChainForwardAvx2(const EwStage* stages, size_t num_stages,
                        const float* x, float* out, size_t n) {
  // All-vectorizable chains (scale/relu only) take the wide path; any
  // transcendental stage drops the whole chain to per-element scalar so the
  // intermediate values (and their roundings) match kernels_scalar.cc.
  bool vectorizable = true;
  for (size_t s = 0; s < num_stages; ++s) {
    if (stages[s].op != EwStageOp::kScale &&
        stages[s].op != EwStageOp::kRelu) {
      vectorizable = false;
      break;
    }
  }
  if (vectorizable) {
    const __m256 zero = _mm256_setzero_ps();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      __m256 v = _mm256_loadu_ps(x + i);
      for (size_t s = 0; s < num_stages; ++s) {
        if (stages[s].op == EwStageOp::kScale) {
          v = _mm256_mul_ps(v, _mm256_set1_ps(stages[s].alpha));
        } else {
          // max(v, 0): second source returned on NaN, matching scalar.
          v = _mm256_max_ps(v, zero);
        }
      }
      _mm256_storeu_ps(out + i, v);
    }
    for (; i < n; ++i) {
      float v = x[i];
      for (size_t s = 0; s < num_stages; ++s) {
        v = EwApplyStageScalar(stages[s], v);
      }
      out[i] = v;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    float v = x[i];
    for (size_t s = 0; s < num_stages; ++s) {
      v = EwApplyStageScalar(stages[s], v);
    }
    out[i] = v;
  }
}

void EwChainBackwardAvx2(const EwStage* stages, size_t num_stages,
                         const float* x, const float* g, float* dx,
                         size_t n) {
  // Same gate as the forward: scale/relu-only chains vectorize exactly
  // (mul and max round identically to their scalar forms, and the stage
  // order is unchanged), so the wide recompute+chain is bit-identical to
  // the scalar backend. Any transcendental stage drops to per-element
  // scalar below.
  bool vectorizable = true;
  for (size_t s = 0; s < num_stages; ++s) {
    if (stages[s].op != EwStageOp::kScale &&
        stages[s].op != EwStageOp::kRelu) {
      vectorizable = false;
      break;
    }
  }
  size_t i = 0;
  if (vectorizable) {
    const __m256 zero = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      __m256 v[kMaxEwStages + 1];
      v[0] = _mm256_loadu_ps(x + i);
      for (size_t s = 0; s < num_stages; ++s) {
        v[s + 1] =
            stages[s].op == EwStageOp::kScale
                ? _mm256_mul_ps(v[s], _mm256_set1_ps(stages[s].alpha))
                : _mm256_max_ps(v[s], zero);
      }
      __m256 d = _mm256_loadu_ps(g + i);
      for (size_t s = num_stages; s-- > 0;) {
        if (stages[s].op == EwStageOp::kScale) {
          d = _mm256_mul_ps(d, _mm256_set1_ps(stages[s].alpha));
        } else {
          // d where v[s] > 0, else +0.0 — NaN inputs compare false,
          // matching the scalar `v > 0 ? d : 0`.
          d = _mm256_and_ps(d, _mm256_cmp_ps(v[s], zero, _CMP_GT_OQ));
        }
      }
      _mm256_storeu_ps(dx + i, d);
    }
  }
  // Per-element scalar: the full path for transcendental chains, the tail
  // for vectorized ones. Recomputes intermediates and chains multiplies
  // whose roundings must match the scalar backend.
  for (; i < n; ++i) {
    float v[kMaxEwStages + 1];
    v[0] = x[i];
    for (size_t s = 0; s < num_stages; ++s) {
      v[s + 1] = EwApplyStageScalar(stages[s], v[s]);
    }
    float d = g[i];
    for (size_t s = num_stages; s-- > 0;) {
      switch (stages[s].op) {
        case EwStageOp::kScale:
          d = d * stages[s].alpha;
          break;
        case EwStageOp::kSigmoid:
          d = d * v[s + 1] * (1.0f - v[s + 1]);
          break;
        case EwStageOp::kTanh:
          d = d * (1.0f - v[s + 1] * v[s + 1]);
          break;
        case EwStageOp::kRelu:
          d = v[s] > 0.0f ? d : 0.0f;
          break;
        case EwStageOp::kLogSigmoid:
          d = d / (1.0f + std::exp(v[s]));
          break;
      }
    }
    dx[i] = d;
  }
}

}  // namespace

const KernelOps* Avx2Ops() {
  // Compiled-in does not mean runnable: gate on CPUID so a binary built on
  // an AVX2 machine still starts (on the scalar path) elsewhere. F16C joins
  // the gate because ScoreBlockF16 uses VCVTPH2PS (every AVX2 part ships
  // F16C in practice, but the check costs nothing).
  static const bool supported = __builtin_cpu_supports("avx2") &&
                                __builtin_cpu_supports("fma") &&
                                __builtin_cpu_supports("f16c");
  if (!supported) return nullptr;
  static const KernelOps ops = {
      DotAvx2, AxpyAvx2, ScaleAvx2, SgnsUpdateStepAvx2, ScoreBlockAvx2,
      ScoreBlockF16Avx2, ScoreBlockI8Avx2,
      SegmentSumAvx2, SegmentMeanAvx2, SegmentMaxAvx2, CsrSpmmAvx2,
      EwChainForwardAvx2, EwChainBackwardAvx2,
  };
  return &ops;
}

}  // namespace hybridgnn::kernels::internal
