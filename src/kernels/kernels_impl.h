#ifndef HYBRIDGNN_KERNELS_KERNELS_IMPL_H_
#define HYBRIDGNN_KERNELS_KERNELS_IMPL_H_

#include <cstddef>
#include <cstdint>

#include "kernels/kernels.h"  // EwStage

// Internal dispatch table shared by kernels.cc and the per-backend
// translation units. Not part of the public API; include kernels/kernels.h
// instead.
namespace hybridgnn::kernels::internal {

struct KernelOps {
  float (*dot)(const float*, const float*, size_t);
  void (*axpy)(float, const float*, float*, size_t);
  void (*scale)(float, float*, size_t);
  float (*sgns_update_step)(const float*, float*, float*, size_t, float,
                            float);
  void (*score_block)(const float*, const float*, size_t, size_t, double*);
  void (*score_block_f16)(const float*, const uint16_t*, size_t, size_t,
                          double*);
  void (*score_block_i8)(const float*, const uint8_t*, const float*,
                         const float*, double, size_t, size_t, double*);
  void (*segment_sum)(const float*, size_t, const size_t*, size_t, float*);
  void (*segment_mean)(const float*, size_t, const size_t*, size_t, float*);
  void (*segment_max)(const float*, size_t, const size_t*, size_t, float*,
                      uint32_t*);
  void (*csr_spmm)(const size_t*, const uint32_t*, const float*, size_t,
                   const float*, size_t, float*);
  void (*ew_chain_fwd)(const EwStage*, size_t, const float*, float*, size_t);
  void (*ew_chain_bwd)(const EwStage*, size_t, const float*, const float*,
                       float*, size_t);
};

/// The scalar reference implementation. Always present.
const KernelOps& ScalarOps();

/// The AVX2+FMA implementation, or nullptr when it was not compiled in
/// (non-x86 target / compiler without -mavx2) or the CPU lacks AVX2/FMA.
/// Defined in kernels_avx2.cc when built, stubbed in kernels.cc otherwise.
const KernelOps* Avx2Ops();

}  // namespace hybridgnn::kernels::internal

#endif  // HYBRIDGNN_KERNELS_KERNELS_IMPL_H_
