#include "nn/embedding.h"

#include "tensor/init.h"

namespace hybridgnn {

EmbeddingTable::EmbeddingTable(size_t num_rows, size_t dim, Rng& rng) {
  Tensor t(num_rows, dim);
  EmbeddingInit(t, rng);
  table_ = ag::Param(std::move(t));
  RegisterParameter(table_);
}

ag::Var EmbeddingTable::Forward(const std::vector<int32_t>& indices) const {
  return ag::GatherRows(table_, indices);
}

ag::Var EmbeddingTable::ForwardNodes(const std::vector<NodeId>& nodes) const {
  // Reused per-thread scratch for the NodeId -> int32 widening; GatherRows
  // copies the span into the tape arena (or an owned vector off-tape), so
  // the buffer is free to be overwritten by the next call.
  static thread_local std::vector<int32_t> idx;
  idx.assign(nodes.begin(), nodes.end());
  return ag::GatherRows(table_, std::span<const int32_t>(idx));
}

}  // namespace hybridgnn
