#ifndef HYBRIDGNN_NN_LINEAR_H_
#define HYBRIDGNN_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"

namespace hybridgnn {

/// Affine map y = xW + b (bias optional), Xavier-initialized.
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng& rng,
         bool with_bias = true);

  /// x is [n, in]; returns [n, out].
  ag::Var Forward(const ag::Var& x) const;

  size_t in_features() const { return in_; }
  size_t out_features() const { return out_; }
  const ag::Var& weight() const { return weight_; }

 private:
  size_t in_;
  size_t out_;
  ag::Var weight_;  // [in, out]
  ag::Var bias_;    // [1, out] or nullptr
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_NN_LINEAR_H_
