#ifndef HYBRIDGNN_NN_SEMANTIC_ATTENTION_H_
#define HYBRIDGNN_NN_SEMANTIC_ATTENTION_H_

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace hybridgnn {

/// HAN-style semantic-level attention (Wang et al. 2019): given M per-
/// metapath embeddings of one node stacked as [M, d], computes
///   w_m = q^T tanh(W h_m + b),  beta = softmax(w),  out = sum_m beta_m h_m.
/// Returns the fused [1, d] embedding.
class SemanticAttention : public Module {
 public:
  SemanticAttention(size_t dim, size_t hidden, Rng& rng);

  /// h is [M, dim] -> [1, dim].
  ag::Var Forward(const ag::Var& h) const;

  /// Attention weights beta (no gradient) for introspection; [1, M].
  Tensor Weights(const Tensor& h) const;

 private:
  size_t dim_;
  Linear proj_;   // [dim -> hidden]
  ag::Var query_;  // [hidden, 1]
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_NN_SEMANTIC_ATTENTION_H_
