#ifndef HYBRIDGNN_NN_ATTENTION_H_
#define HYBRIDGNN_NN_ATTENTION_H_

#include "common/rng.h"
#include "nn/module.h"

namespace hybridgnn {

/// Single-head scaled dot-product self-attention (Vaswani et al. 2017),
/// exactly the block used twice in HybridGNN's hierarchical attention
/// (Eqs. 6 and 8):
///   A(H) = softmax(H Wq (H Wk)^T / sqrt(d_k)) H Wv.
/// When `identity_values` is set, the value projection Wv is dropped and the
/// layer computes softmax(H Wq (H Wk)^T / sqrt(d_k)) H — a pure reweighting
/// of the input rows (output [m, in_dim]). This matches the paper's own
/// analysis of its attention (Eq. 14: H_hat = concat(alpha_j * h_j)) and is
/// far better behaved under small training budgets.
class SelfAttention : public Module {
 public:
  SelfAttention(size_t in_dim, size_t key_dim, Rng& rng,
                bool identity_values = false);

  /// h is [m, in_dim] (m = number of items attended over);
  /// returns [m, key_dim], or [m, in_dim] when identity_values is set.
  ag::Var Forward(const ag::Var& h) const;

  /// Returns the row-stochastic attention matrix softmax(QK^T/sqrt(dk)) for
  /// the *current values* of h (no gradient) — used for the paper's Fig. 6
  /// attention-score introspection.
  Tensor AttentionScores(const Tensor& h) const;

  size_t in_dim() const { return in_dim_; }
  size_t key_dim() const { return key_dim_; }

 private:
  size_t in_dim_;
  size_t key_dim_;
  bool identity_values_;
  ag::Var wq_;  // [in, key]
  ag::Var wk_;  // [in, key]
  ag::Var wv_;  // [in, key]; absent when identity_values
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_NN_ATTENTION_H_
