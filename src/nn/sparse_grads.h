#ifndef HYBRIDGNN_NN_SPARSE_GRADS_H_
#define HYBRIDGNN_NN_SPARSE_GRADS_H_

#include <cstddef>
#include <cstdint>

#include "tensor/autograd.h"
#include "tensor/tensor.h"

namespace hybridgnn::sparse_detail {

/// Backward bodies of the frontier segment ops (nn/sparse.cc), exported so
/// the plan executor (src/plan) can replay a compiled step's backward with
/// the exact same elementary operations — and therefore the exact same bits
/// — as the eager closures. The *Into forms take the incoming gradient `g`
/// and the stabilized structure arrays the closures would have captured;
/// the Node-level wrappers below are what the eager closures call.

/// dx (pre-shaped rows(x) x cols(g)) <- broadcast of g rows over segments.
/// Writes every row (the frontier tiles the block), so dx may be Uninit.
void SegmentSumGradInto(const Tensor& g, const size_t* indptr, size_t segs,
                        Tensor* dx);
/// Same, scaled by 1/len per segment (exact MeanRows-backward expression).
void SegmentMeanGradInto(const Tensor& g, const size_t* indptr, size_t segs,
                         Tensor* dx);
/// Zeroes dx, then routes each g element to its argmax row.
void SegmentMaxGradInto(const Tensor& g, const uint32_t* argmax, size_t segs,
                        Tensor* dx);
/// Accumulates the segment-grouped scatter of g into `dest` (the table's
/// gradient accumulator); duplicate rows within a segment chain into a
/// scratch first, matching the eager per-level accumulation order.
void SegmentedScatterGradInto(const Tensor& g, const int32_t* idx,
                              const size_t* indptr, size_t segs, Tensor* dest);

void SegmentSumGrad(ag::Node& n, const size_t* indptr, size_t segs);
void SegmentMeanGrad(ag::Node& n, const size_t* indptr, size_t segs);
void SegmentMaxGrad(ag::Node& n, const uint32_t* argmax, size_t segs);
void SegmentedScatterGrad(ag::Node& n, const int32_t* idx,
                          const size_t* indptr, size_t segs);

}  // namespace hybridgnn::sparse_detail

#endif  // HYBRIDGNN_NN_SPARSE_GRADS_H_
