#ifndef HYBRIDGNN_NN_EMBEDDING_H_
#define HYBRIDGNN_NN_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/types.h"
#include "nn/module.h"

namespace hybridgnn {

/// Trainable lookup table [num_rows, dim] with word2vec-style init.
class EmbeddingTable : public Module {
 public:
  EmbeddingTable(size_t num_rows, size_t dim, Rng& rng);

  /// Gathers rows; differentiably scatters gradients back on backward.
  ag::Var Forward(const std::vector<int32_t>& indices) const;
  /// Convenience overload for NodeId lists.
  ag::Var ForwardNodes(const std::vector<NodeId>& nodes) const;

  /// The full table as a Var (e.g. for full-batch GCN input).
  const ag::Var& table() const { return table_; }
  size_t num_rows() const { return table_->value.rows(); }
  size_t dim() const { return table_->value.cols(); }

 private:
  ag::Var table_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_NN_EMBEDDING_H_
