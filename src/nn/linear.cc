#include "nn/linear.h"

#include "tensor/init.h"

namespace hybridgnn {

Linear::Linear(size_t in_features, size_t out_features, Rng& rng,
               bool with_bias)
    : in_(in_features), out_(out_features) {
  Tensor w(in_features, out_features);
  XavierUniform(w, rng);
  weight_ = ag::Param(std::move(w));
  RegisterParameter(weight_);
  if (with_bias) {
    bias_ = ag::Param(Tensor(1, out_features));
    RegisterParameter(bias_);
  }
}

ag::Var Linear::Forward(const ag::Var& x) const {
  ag::Var y = ag::MatMul(x, weight_);
  if (bias_ != nullptr) y = ag::AddRowBroadcast(y, bias_);
  return y;
}

}  // namespace hybridgnn
