#include "nn/semantic_attention.h"

#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn {

SemanticAttention::SemanticAttention(size_t dim, size_t hidden, Rng& rng)
    : dim_(dim), proj_(dim, hidden, rng) {
  RegisterSubmodule(proj_);
  Tensor q(hidden, 1);
  XavierUniform(q, rng);
  query_ = ag::Param(std::move(q));
  RegisterParameter(query_);
}

ag::Var SemanticAttention::Forward(const ag::Var& h) const {
  // scores: [M, 1] -> softmax over M -> weighted sum of rows.
  ag::Var scores = ag::MatMul(ag::Tanh(proj_.Forward(h)), query_);
  ag::Var beta = ag::SoftmaxRows(ag::Transpose(scores));  // [1, M]
  return ag::MatMul(beta, h);                             // [1, dim]
}

Tensor SemanticAttention::Weights(const Tensor& h) const {
  // Run the score path on a constant input; no gradients are recorded.
  ag::Var hv = ag::Constant(h);
  Tensor scores =
      MatMul(Tanh(proj_.Forward(hv)->value), query_->value);  // [M,1]
  return SoftmaxRows(Transpose(scores));                      // [1,M]
}

}  // namespace hybridgnn
