#ifndef HYBRIDGNN_NN_SPARSE_H_
#define HYBRIDGNN_NN_SPARSE_H_

#include <vector>

#include "graph/frontier.h"
#include "graph/graph.h"
#include "nn/module.h"
#include "tensor/autograd.h"

namespace hybridgnn {

/// ---- Frontier segment ops ------------------------------------------------
/// Differentiable reductions over a flat [m, dim] block whose rows are
/// grouped into contiguous segments by `f.indptr` (f.indices is not
/// consulted — only the fused gather reads it). All return
/// [f.num_segments(), dim]; empty segments reduce to zero rows. The forward
/// loops run through the kernels layer (scalar / AVX2 behind
/// HYBRIDGNN_KERNELS) and are bit-identical across backends.

/// Per-segment row sum. Backward: dx[i] = g[segment(i)].
ag::Var SegmentSum(const ag::Var& x, const MinibatchFrontier& f);

/// Per-segment row mean — bit-identical to the per-level
/// GatherRows+MeanRows composition it replaced (a singleton segment
/// multiplies by 1.0f, which is exact). Backward: dx[i] = g[segment(i)] / len.
ag::Var SegmentMean(const ag::Var& x, const MinibatchFrontier& f);

/// Per-column segment max. Backward routes each output element's gradient
/// to the argmax row recorded during forward (first row wins ties).
ag::Var SegmentMax(const ag::Var& x, const MinibatchFrontier& f);

/// Gathers `f.indices` rows of `table` into a flat [m, dim] block — the
/// frontier counterpart of ag::GatherRows. The backward scatter is
/// segment-grouped: within each segment, duplicate rows' contributions are
/// pre-summed and each segment's partials are added to the table gradient
/// in segment order, reproducing the accumulation order of the per-level
/// gathers this op replaced (segment 0 first — frontier builders order
/// segments deepest level first). Contributions go through
/// Node::GradAccumulator, so no dense scratch gradient is allocated.
ag::Var GatherRowsSegmented(const ag::Var& table, const MinibatchFrontier& f);

/// CSR float sparse matrix for propagation operators (normalized adjacency).
struct SparseMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<size_t> offsets;  // rows+1
  std::vector<uint32_t> col_idx;
  std::vector<float> values;
  /// When true, S == S^T (symmetric normalization); backward reuses S.
  bool symmetric = false;
};

/// Y = S X (dense X). Differentiable in X. For non-symmetric S the backward
/// uses the explicitly provided transpose.
ag::Var SpMM(const SparseMatrix& s, const ag::Var& x);

/// GCN propagation operator D^-1/2 (A+I) D^-1/2 over the union of all
/// relations in `g` (symmetric).
SparseMatrix NormalizedAdjacency(const MultiplexHeteroGraph& g);

/// Row-normalized per-relation operator D_r^-1 A_r (used by R-GCN); not
/// symmetric, so the transpose is computed alongside.
struct RelationOperator {
  SparseMatrix forward;
  SparseMatrix transpose;
};
RelationOperator RelationAdjacency(const MultiplexHeteroGraph& g,
                                   RelationId r);

/// Y = S X with explicit transpose for backward.
ag::Var SpMM(const RelationOperator& op, const ag::Var& x);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_NN_SPARSE_H_
