#ifndef HYBRIDGNN_NN_SPARSE_H_
#define HYBRIDGNN_NN_SPARSE_H_

#include <vector>

#include "graph/graph.h"
#include "nn/module.h"
#include "tensor/autograd.h"

namespace hybridgnn {

/// CSR float sparse matrix for propagation operators (normalized adjacency).
struct SparseMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<size_t> offsets;  // rows+1
  std::vector<uint32_t> col_idx;
  std::vector<float> values;
  /// When true, S == S^T (symmetric normalization); backward reuses S.
  bool symmetric = false;
};

/// Y = S X (dense X). Differentiable in X. For non-symmetric S the backward
/// uses the explicitly provided transpose.
ag::Var SpMM(const SparseMatrix& s, const ag::Var& x);

/// GCN propagation operator D^-1/2 (A+I) D^-1/2 over the union of all
/// relations in `g` (symmetric).
SparseMatrix NormalizedAdjacency(const MultiplexHeteroGraph& g);

/// Row-normalized per-relation operator D_r^-1 A_r (used by R-GCN); not
/// symmetric, so the transpose is computed alongside.
struct RelationOperator {
  SparseMatrix forward;
  SparseMatrix transpose;
};
RelationOperator RelationAdjacency(const MultiplexHeteroGraph& g,
                                   RelationId r);

/// Y = S X with explicit transpose for backward.
ag::Var SpMM(const RelationOperator& op, const ag::Var& x);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_NN_SPARSE_H_
