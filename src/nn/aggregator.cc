#include "nn/aggregator.h"

namespace hybridgnn {

MeanAggregator::MeanAggregator(size_t dim, Rng& rng)
    : dim_(dim), combine_(2 * dim, dim, rng) {
  RegisterSubmodule(combine_);
}

ag::Var MeanAggregator::Forward(const ag::Var& self,
                                const ag::Var& neigh_mean) const {
  ag::Var cat = ag::ConcatCols({self, neigh_mean});
  return ag::Tanh(combine_.Forward(cat));
}

PoolingAggregator::PoolingAggregator(size_t dim, Rng& rng)
    : dim_(dim), pre_(dim, dim, rng), combine_(2 * dim, dim, rng) {
  RegisterSubmodule(pre_);
  RegisterSubmodule(combine_);
}

ag::Var PoolingAggregator::Forward(const ag::Var& self,
                                   const ag::Var& pooled) const {
  ag::Var cat = ag::ConcatCols({self, pooled});
  return ag::Tanh(combine_.Forward(cat));
}

ag::Var PoolingAggregator::TransformNeighbors(const ag::Var& neighbors) const {
  return ag::Relu(pre_.Forward(neighbors));
}

}  // namespace hybridgnn
