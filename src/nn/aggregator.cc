#include "nn/aggregator.h"

#include "common/logging.h"
#include "nn/sparse.h"

namespace hybridgnn {

MeanAggregator::MeanAggregator(size_t dim, Rng& rng)
    : dim_(dim), combine_(2 * dim, dim, rng) {
  RegisterSubmodule(combine_);
}

ag::Var MeanAggregator::Forward(const MinibatchFrontier& f,
                                const ag::Var& self,
                                const ag::Var& neighbors) const {
  HYBRIDGNN_CHECK(f.num_segments() == self->value.rows())
      << "aggregator frontier: " << f.num_segments() << " segments for "
      << self->value.rows() << " self rows";
  const bool identity = f.num_segments() == neighbors->value.rows() &&
                        f.AllSingleton();
  ag::Var mean = identity ? neighbors : SegmentMean(neighbors, f);
  ag::Var cat = ag::ConcatCols({self, mean});
  return ag::Tanh(combine_.Forward(cat));
}

PoolingAggregator::PoolingAggregator(size_t dim, Rng& rng)
    : dim_(dim), pre_(dim, dim, rng), combine_(2 * dim, dim, rng) {
  RegisterSubmodule(pre_);
  RegisterSubmodule(combine_);
}

ag::Var PoolingAggregator::Forward(const MinibatchFrontier& f,
                                   const ag::Var& self,
                                   const ag::Var& neighbors) const {
  HYBRIDGNN_CHECK(f.num_segments() == self->value.rows())
      << "aggregator frontier: " << f.num_segments() << " segments for "
      << self->value.rows() << " self rows";
  ag::Var pooled = SegmentMax(TransformNeighbors(neighbors), f);
  ag::Var cat = ag::ConcatCols({self, pooled});
  return ag::Tanh(combine_.Forward(cat));
}

ag::Var PoolingAggregator::TransformNeighbors(const ag::Var& neighbors) const {
  return ag::Relu(pre_.Forward(neighbors));
}

}  // namespace hybridgnn
