#include "nn/sparse.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "kernels/kernels.h"
#include "nn/sparse_grads.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn {

namespace {

Tensor SpDense(const SparseMatrix& s, const Tensor& x) {
  HYBRIDGNN_CHECK(s.cols == x.rows())
      << "SpMM dims: " << s.cols << " vs " << x.rows();
  Tensor y(s.rows, x.cols());
  if (s.rows == 0 || x.rows() == 0) return y;
  kernels::CsrSpmm(s.offsets.data(), s.col_idx.data(), s.values.data(),
                   s.rows, x.RowPtr(0), x.cols(), y.RowPtr(0));
  return y;
}

ag::Var SpMMImpl(const SparseMatrix& fwd, const SparseMatrix& bwd,
                 const ag::Var& x) {
  Tensor out = SpDense(fwd, x->value);
  if (ag::Tape::Current() != nullptr) {
    // Tape mode: the backward runs before the enclosing TapeScope ends, and
    // relation operators outlive every training scope, so borrow the CSR
    // instead of copying it each minibatch.
    const SparseMatrix* b = &bwd;
    return ag::MakeOp(std::move(out), {x}, [b](ag::Node& n) {
      ag::Node* x = n.parent(0);
      if (x->requires_grad) x->AccumulateGrad(SpDense(*b, n.grad));
    });
  }
  // Heap mode: copy the (small) CSR for backward lifetime safety.
  return ag::MakeOp(std::move(out), {x},
                    [bwd_copy = bwd](ag::Node& n) {
                      ag::Node* x = n.parent(0);
                      if (x->requires_grad) {
                        x->AccumulateGrad(SpDense(bwd_copy, n.grad));
                      }
                    });
}

// ---- Frontier segment ops --------------------------------------------------

// Shared CHECK for the segment ops: the frontier must tile the block's rows.
void CheckFrontierCoversBlock(const MinibatchFrontier& f, const Tensor& x) {
  HYBRIDGNN_CHECK(!f.indptr.empty() && f.indptr.front() == 0 &&
                  f.indptr.back() == x.rows())
      << "frontier indptr [0.." << (f.indptr.empty() ? 0 : f.indptr.back())
      << ") does not tile a " << x.rows() << "-row block";
}

// Copies a frontier's indptr where the backward closure can reach it: the
// tape arena in tape mode (callers reuse thread_local scratch frontiers, so
// the op must not alias them), the closure's own vector in heap mode.
const size_t* StableIndptr(const MinibatchFrontier& f, ag::Tape* tape) {
  size_t* p = tape->AllocateArray<size_t>(f.indptr.size());
  std::memcpy(p, f.indptr.data(), f.indptr.size() * sizeof(size_t));
  return p;
}

}  // namespace

// Exported through nn/sparse_grads.h: the plan executor replays these when
// it executes a compiled step's backward schedule.
namespace sparse_detail {

void SegmentSumGradInto(const Tensor& g, const size_t* indptr, size_t segs,
                        Tensor* dx) {
  const size_t dim = dx->cols();
  for (size_t s = 0; s < segs; ++s) {
    const float* gr = g.RowPtr(s);
    for (size_t i = indptr[s]; i < indptr[s + 1]; ++i) {
      std::memcpy(dx->RowPtr(i), gr, dim * sizeof(float));
    }
  }
}

// The exact expression MeanRows' backward used per element: d = g * (1/len).
void SegmentMeanGradInto(const Tensor& g, const size_t* indptr, size_t segs,
                         Tensor* dx) {
  const size_t dim = dx->cols();
  for (size_t s = 0; s < segs; ++s) {
    const size_t lo = indptr[s];
    const size_t hi = indptr[s + 1];
    if (lo == hi) continue;
    const float inv = 1.0f / static_cast<float>(hi - lo);
    const float* gr = g.RowPtr(s);
    for (size_t i = lo; i < hi; ++i) {
      float* d = dx->RowPtr(i);
      for (size_t j = 0; j < dim; ++j) d[j] = gr[j] * inv;
    }
  }
}

void SegmentMaxGradInto(const Tensor& g, const uint32_t* argmax, size_t segs,
                        Tensor* dx) {
  const size_t dim = dx->cols();
  dx->Zero();  // only argmax rows receive grad
  for (size_t s = 0; s < segs; ++s) {
    const float* gr = g.RowPtr(s);
    const uint32_t* a = argmax + s * dim;
    for (size_t j = 0; j < dim; ++j) {
      if (a[j] == kernels::kNoSegmentRow) continue;
      dx->RowPtr(a[j])[j] += gr[j];
    }
  }
}

void SegmentSumGrad(ag::Node& n, const size_t* indptr, size_t segs) {
  ag::Node* x = n.parent(0);
  if (!x->requires_grad) return;
  Tensor dx = Tensor::Uninit(x->value.rows(), x->value.cols());
  SegmentSumGradInto(n.grad, indptr, segs, &dx);
  x->AccumulateGrad(dx);
}

void SegmentMeanGrad(ag::Node& n, const size_t* indptr, size_t segs) {
  ag::Node* x = n.parent(0);
  if (!x->requires_grad) return;
  Tensor dx = Tensor::Uninit(x->value.rows(), x->value.cols());
  SegmentMeanGradInto(n.grad, indptr, segs, &dx);
  x->AccumulateGrad(dx);
}

void SegmentMaxGrad(ag::Node& n, const uint32_t* argmax, size_t segs) {
  ag::Node* x = n.parent(0);
  if (!x->requires_grad) return;
  Tensor dx = Tensor::Uninit(x->value.rows(), x->value.cols());
  SegmentMaxGradInto(n.grad, argmax, segs, &dx);
  x->AccumulateGrad(dx);
}

}  // namespace sparse_detail

namespace {

ag::Var SegmentReduceOp(const ag::Var& x, const MinibatchFrontier& f,
                        void (*kernel)(const float*, size_t, const size_t*,
                                       size_t, float*),
                        void (*grad)(ag::Node&, const size_t*, size_t),
                        ag::OpKind kind) {
  CheckFrontierCoversBlock(f, x->value);
  const size_t segs = f.num_segments();
  const size_t dim = x->value.cols();
  Tensor out = Tensor::Uninit(segs, dim);
  if (segs > 0) {
    kernel(x->value.rows() > 0 ? x->value.RowPtr(0) : nullptr, dim,
           f.indptr.data(), segs, out.RowPtr(0));
  }
  ag::Var r;
  if (ag::Tape* tape = ag::Tape::Current()) {
    const size_t* indptr = StableIndptr(f, tape);
    r = ag::MakeOp(std::move(out), {x}, [indptr, segs, grad](ag::Node& n) {
      grad(n, indptr, segs);
    });
  } else {
    r = ag::MakeOp(std::move(out), {x},
                   [own = f.indptr, grad](ag::Node& n) {
                     grad(n, own.data(), own.size() - 1);
                   });
  }
  if (ag::detail::Tracing()) {
    ag::OpAttrs attrs;
    attrs.indptr = f.indptr;
    const ag::Var parents[] = {x};
    ag::detail::TraceOp(kind, r, parents, attrs);
  }
  return r;
}

}  // namespace

ag::Var SegmentSum(const ag::Var& x, const MinibatchFrontier& f) {
  return SegmentReduceOp(x, f, kernels::SegmentSum,
                         sparse_detail::SegmentSumGrad,
                         ag::OpKind::kSegmentSum);
}

ag::Var SegmentMean(const ag::Var& x, const MinibatchFrontier& f) {
  return SegmentReduceOp(x, f, kernels::SegmentMean,
                         sparse_detail::SegmentMeanGrad,
                         ag::OpKind::kSegmentMean);
}

ag::Var SegmentMax(const ag::Var& x, const MinibatchFrontier& f) {
  CheckFrontierCoversBlock(f, x->value);
  const size_t segs = f.num_segments();
  const size_t dim = x->value.cols();
  Tensor out = Tensor::Uninit(segs, dim);
  ag::Var r;
  if (ag::Tape* tape = ag::Tape::Current()) {
    uint32_t* argmax = tape->AllocateArray<uint32_t>(segs * dim);
    if (segs > 0) {
      kernels::SegmentMax(x->value.rows() > 0 ? x->value.RowPtr(0) : nullptr,
                          dim, f.indptr.data(), segs, out.RowPtr(0), argmax);
    }
    r = ag::MakeOp(std::move(out), {x}, [argmax, segs](ag::Node& n) {
      sparse_detail::SegmentMaxGrad(n, argmax, segs);
    });
  } else {
    std::vector<uint32_t> argmax(segs * dim);
    if (segs > 0) {
      kernels::SegmentMax(x->value.rows() > 0 ? x->value.RowPtr(0) : nullptr,
                          dim, f.indptr.data(), segs, out.RowPtr(0),
                          argmax.data());
    }
    r = ag::MakeOp(std::move(out), {x},
                   [own = std::move(argmax)](ag::Node& n) {
                     sparse_detail::SegmentMaxGrad(n, own.data(),
                                                   own.size() / n.value.cols());
                   });
  }
  if (ag::detail::Tracing()) {
    ag::OpAttrs attrs;
    attrs.indptr = f.indptr;
    const ag::Var parents[] = {x};
    ag::detail::TraceOp(ag::OpKind::kSegmentMax, r, parents, attrs);
  }
  return r;
}

namespace sparse_detail {

// Segment-grouped scatter into the table gradient. Per segment (in segment
// order), duplicate rows' contributions are chained into `acc` first, then
// added to the destination with one add per element — the same elementary
// accumulation order as the per-level ScatterGatherGrad sequence the fused
// gather replaced, without materializing one dense gradient per level.
void SegmentedScatterGradInto(const Tensor& g, const int32_t* idx,
                              const size_t* indptr, size_t segs,
                              Tensor* dest) {
  const size_t dim = dest->cols();
  static thread_local std::vector<float> acc;
  acc.resize(dim);
  for (size_t s = 0; s < segs; ++s) {
    const size_t lo = indptr[s];
    const size_t hi = indptr[s + 1];
    for (size_t i = lo; i < hi; ++i) {
      const int32_t row = idx[i];
      bool first = true;
      for (size_t p = lo; p < i; ++p) {
        if (idx[p] == row) {
          first = false;
          break;
        }
      }
      if (!first) continue;  // folded into the first occurrence's chain
      const float* gr = g.RowPtr(i);
      std::memcpy(acc.data(), gr, dim * sizeof(float));
      for (size_t p = i + 1; p < hi; ++p) {
        if (idx[p] != row) continue;
        const float* gp = g.RowPtr(p);
        for (size_t j = 0; j < dim; ++j) acc[j] += gp[j];
      }
      float* d = dest->RowPtr(static_cast<size_t>(row));
      for (size_t j = 0; j < dim; ++j) d[j] += acc[j];
    }
  }
}

void SegmentedScatterGrad(ag::Node& n, const int32_t* idx,
                          const size_t* indptr, size_t segs) {
  ag::Node* table = n.parent(0);
  if (!table->requires_grad) return;
  SegmentedScatterGradInto(n.grad, idx, indptr, segs,
                           &table->GradAccumulator());
}

}  // namespace sparse_detail

ag::Var GatherRowsSegmented(const ag::Var& table, const MinibatchFrontier& f) {
  HYBRIDGNN_CHECK(f.indptr.back() == f.indices.size())
      << "frontier indptr/indices mismatch: " << f.indptr.back() << " vs "
      << f.indices.size();
  Tensor out = hybridgnn::GatherRows(table->value, f.indices);
  const size_t segs = f.num_segments();
  ag::Var r;
  if (ag::Tape* tape = ag::Tape::Current()) {
    const size_t* indptr = StableIndptr(f, tape);
    int32_t* idx = tape->AllocateArray<int32_t>(f.indices.size());
    std::memcpy(idx, f.indices.data(), f.indices.size() * sizeof(int32_t));
    r = ag::MakeOp(std::move(out), {table},
                   [idx, indptr, segs](ag::Node& n) {
                     sparse_detail::SegmentedScatterGrad(n, idx, indptr, segs);
                   });
  } else {
    r = ag::MakeOp(std::move(out), {table},
                   [own_idx = f.indices, own_ptr = f.indptr](ag::Node& n) {
                     sparse_detail::SegmentedScatterGrad(
                         n, own_idx.data(), own_ptr.data(),
                         own_ptr.size() - 1);
                   });
  }
  if (ag::detail::Tracing()) {
    ag::OpAttrs attrs;
    attrs.indices = f.indices;
    attrs.indptr = f.indptr;
    const ag::Var parents[] = {table};
    ag::detail::TraceOp(ag::OpKind::kGatherRowsSegmented, r, parents, attrs);
  }
  return r;
}

ag::Var SpMM(const SparseMatrix& s, const ag::Var& x) {
  HYBRIDGNN_CHECK(s.symmetric)
      << "SpMM(SparseMatrix) requires symmetric S; use RelationOperator";
  return SpMMImpl(s, s, x);
}

ag::Var SpMM(const RelationOperator& op, const ag::Var& x) {
  return SpMMImpl(op.forward, op.transpose, x);
}

SparseMatrix NormalizedAdjacency(const MultiplexHeteroGraph& g) {
  const size_t n = g.num_nodes();
  // Union adjacency with self loops; degrees counted once per distinct
  // neighbor pair occurrence (parallel relations add weight, which is a
  // reasonable multigraph treatment).
  std::vector<size_t> degree(n, 1);  // self loop
  for (const auto& e : g.edges()) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  std::vector<float> inv_sqrt(n);
  for (size_t i = 0; i < n; ++i) {
    inv_sqrt[i] = 1.0f / std::sqrt(static_cast<float>(degree[i]));
  }
  SparseMatrix s;
  s.rows = s.cols = n;
  s.symmetric = true;
  s.offsets.assign(n + 1, 0);
  for (const auto& e : g.edges()) {
    ++s.offsets[e.src + 1];
    ++s.offsets[e.dst + 1];
  }
  for (size_t i = 0; i < n; ++i) ++s.offsets[i + 1];  // self loops
  for (size_t i = 0; i < n; ++i) s.offsets[i + 1] += s.offsets[i];
  s.col_idx.resize(s.offsets[n]);
  s.values.resize(s.offsets[n]);
  std::vector<size_t> cursor(s.offsets.begin(), s.offsets.end() - 1);
  auto put = [&](size_t i, size_t j) {
    s.col_idx[cursor[i]] = static_cast<uint32_t>(j);
    s.values[cursor[i]] = inv_sqrt[i] * inv_sqrt[j];
    ++cursor[i];
  };
  for (const auto& e : g.edges()) {
    put(e.src, e.dst);
    put(e.dst, e.src);
  }
  for (size_t i = 0; i < n; ++i) put(i, i);
  return s;
}

RelationOperator RelationAdjacency(const MultiplexHeteroGraph& g,
                                   RelationId r) {
  const size_t n = g.num_nodes();
  RelationOperator op;
  SparseMatrix& f = op.forward;
  f.rows = f.cols = n;
  f.offsets.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    f.offsets[v + 1] = f.offsets[v] + g.Degree(v, r);
  }
  f.col_idx.resize(f.offsets[n]);
  f.values.resize(f.offsets[n]);
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = g.Neighbors(v, r);
    const float inv = nbrs.empty() ? 0.0f : 1.0f / nbrs.size();
    size_t at = f.offsets[v];
    for (NodeId u : nbrs) {
      f.col_idx[at] = u;
      f.values[at] = inv;
      ++at;
    }
  }
  // Transpose of D^-1 A: entry (u,v) = 1/deg(v) for each edge (v,u).
  SparseMatrix& t = op.transpose;
  t.rows = t.cols = n;
  t.offsets.assign(n + 1, 0);
  for (size_t e = 0; e < f.col_idx.size(); ++e) ++t.offsets[f.col_idx[e] + 1];
  for (size_t i = 0; i < n; ++i) t.offsets[i + 1] += t.offsets[i];
  t.col_idx.resize(f.col_idx.size());
  t.values.resize(f.values.size());
  std::vector<size_t> cursor(t.offsets.begin(), t.offsets.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    for (size_t e = f.offsets[v]; e < f.offsets[v + 1]; ++e) {
      const uint32_t u = f.col_idx[e];
      t.col_idx[cursor[u]] = v;
      t.values[cursor[u]] = f.values[e];
      ++cursor[u];
    }
  }
  return op;
}

}  // namespace hybridgnn
