#include "nn/sparse.h"

#include <cmath>

#include "common/logging.h"

namespace hybridgnn {

namespace {

Tensor SpDense(const SparseMatrix& s, const Tensor& x) {
  HYBRIDGNN_CHECK(s.cols == x.rows())
      << "SpMM dims: " << s.cols << " vs " << x.rows();
  Tensor y(s.rows, x.cols());
  for (size_t i = 0; i < s.rows; ++i) {
    float* yrow = y.RowPtr(i);
    for (size_t e = s.offsets[i]; e < s.offsets[i + 1]; ++e) {
      const float w = s.values[e];
      const float* xrow = x.RowPtr(s.col_idx[e]);
      for (size_t j = 0; j < x.cols(); ++j) yrow[j] += w * xrow[j];
    }
  }
  return y;
}

ag::Var SpMMImpl(const SparseMatrix& fwd, const SparseMatrix& bwd,
                 const ag::Var& x) {
  Tensor out = SpDense(fwd, x->value);
  if (ag::Tape::Current() != nullptr) {
    // Tape mode: the backward runs before the enclosing TapeScope ends, and
    // relation operators outlive every training scope, so borrow the CSR
    // instead of copying it each minibatch.
    const SparseMatrix* b = &bwd;
    return ag::MakeOp(std::move(out), {x}, [b](ag::Node& n) {
      ag::Node* x = n.parent(0);
      if (x->requires_grad) x->AccumulateGrad(SpDense(*b, n.grad));
    });
  }
  // Heap mode: copy the (small) CSR for backward lifetime safety.
  return ag::MakeOp(std::move(out), {x},
                    [bwd_copy = bwd](ag::Node& n) {
                      ag::Node* x = n.parent(0);
                      if (x->requires_grad) {
                        x->AccumulateGrad(SpDense(bwd_copy, n.grad));
                      }
                    });
}

}  // namespace

ag::Var SpMM(const SparseMatrix& s, const ag::Var& x) {
  HYBRIDGNN_CHECK(s.symmetric)
      << "SpMM(SparseMatrix) requires symmetric S; use RelationOperator";
  return SpMMImpl(s, s, x);
}

ag::Var SpMM(const RelationOperator& op, const ag::Var& x) {
  return SpMMImpl(op.forward, op.transpose, x);
}

SparseMatrix NormalizedAdjacency(const MultiplexHeteroGraph& g) {
  const size_t n = g.num_nodes();
  // Union adjacency with self loops; degrees counted once per distinct
  // neighbor pair occurrence (parallel relations add weight, which is a
  // reasonable multigraph treatment).
  std::vector<size_t> degree(n, 1);  // self loop
  for (const auto& e : g.edges()) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  std::vector<float> inv_sqrt(n);
  for (size_t i = 0; i < n; ++i) {
    inv_sqrt[i] = 1.0f / std::sqrt(static_cast<float>(degree[i]));
  }
  SparseMatrix s;
  s.rows = s.cols = n;
  s.symmetric = true;
  s.offsets.assign(n + 1, 0);
  for (const auto& e : g.edges()) {
    ++s.offsets[e.src + 1];
    ++s.offsets[e.dst + 1];
  }
  for (size_t i = 0; i < n; ++i) ++s.offsets[i + 1];  // self loops
  for (size_t i = 0; i < n; ++i) s.offsets[i + 1] += s.offsets[i];
  s.col_idx.resize(s.offsets[n]);
  s.values.resize(s.offsets[n]);
  std::vector<size_t> cursor(s.offsets.begin(), s.offsets.end() - 1);
  auto put = [&](size_t i, size_t j) {
    s.col_idx[cursor[i]] = static_cast<uint32_t>(j);
    s.values[cursor[i]] = inv_sqrt[i] * inv_sqrt[j];
    ++cursor[i];
  };
  for (const auto& e : g.edges()) {
    put(e.src, e.dst);
    put(e.dst, e.src);
  }
  for (size_t i = 0; i < n; ++i) put(i, i);
  return s;
}

RelationOperator RelationAdjacency(const MultiplexHeteroGraph& g,
                                   RelationId r) {
  const size_t n = g.num_nodes();
  RelationOperator op;
  SparseMatrix& f = op.forward;
  f.rows = f.cols = n;
  f.offsets.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    f.offsets[v + 1] = f.offsets[v] + g.Degree(v, r);
  }
  f.col_idx.resize(f.offsets[n]);
  f.values.resize(f.offsets[n]);
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = g.Neighbors(v, r);
    const float inv = nbrs.empty() ? 0.0f : 1.0f / nbrs.size();
    size_t at = f.offsets[v];
    for (NodeId u : nbrs) {
      f.col_idx[at] = u;
      f.values[at] = inv;
      ++at;
    }
  }
  // Transpose of D^-1 A: entry (u,v) = 1/deg(v) for each edge (v,u).
  SparseMatrix& t = op.transpose;
  t.rows = t.cols = n;
  t.offsets.assign(n + 1, 0);
  for (size_t e = 0; e < f.col_idx.size(); ++e) ++t.offsets[f.col_idx[e] + 1];
  for (size_t i = 0; i < n; ++i) t.offsets[i + 1] += t.offsets[i];
  t.col_idx.resize(f.col_idx.size());
  t.values.resize(f.values.size());
  std::vector<size_t> cursor(t.offsets.begin(), t.offsets.end() - 1);
  for (NodeId v = 0; v < n; ++v) {
    for (size_t e = f.offsets[v]; e < f.offsets[v + 1]; ++e) {
      const uint32_t u = f.col_idx[e];
      t.col_idx[cursor[u]] = v;
      t.values[cursor[u]] = f.values[e];
      ++cursor[u];
    }
  }
  return op;
}

}  // namespace hybridgnn
