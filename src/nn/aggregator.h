#ifndef HYBRIDGNN_NN_AGGREGATOR_H_
#define HYBRIDGNN_NN_AGGREGATOR_H_

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace hybridgnn {

/// Mean aggregator (the AGG of Eq. 3, GraphSage-style): combines a node's
/// own embedding with the mean of its sampled neighbors:
///   AGG(h_v, {h_j}) = tanh(W * concat(h_v, mean_j h_j) + b).
/// The paper reports no significant difference among mean/LSTM/pooling and
/// uses mean; we do the same.
class MeanAggregator : public Module {
 public:
  /// `dim` is both the input and output embedding width (d_h in the paper).
  MeanAggregator(size_t dim, Rng& rng);

  /// self is [n, dim]; neigh_mean is [n, dim] (precomputed per-row means of
  /// each node's sampled neighbor embeddings). Returns [n, dim].
  ag::Var Forward(const ag::Var& self, const ag::Var& neigh_mean) const;

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  Linear combine_;
};

/// Max-pooling aggregator: each neighbor goes through a shared nonlinearity,
/// then elementwise max; provided for the paper's "aggregator candidates"
/// discussion and for the ablation bench.
class PoolingAggregator : public Module {
 public:
  PoolingAggregator(size_t dim, Rng& rng);

  /// self is [n, dim]; pooled is [n, dim] (elementwise max of transformed
  /// neighbor embeddings, computed by the caller with TransformNeighbors).
  ag::Var Forward(const ag::Var& self, const ag::Var& pooled) const;

  /// Applies the shared pre-pooling transform to a neighbor batch [m, dim].
  ag::Var TransformNeighbors(const ag::Var& neighbors) const;

 private:
  size_t dim_;
  Linear pre_;
  Linear combine_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_NN_AGGREGATOR_H_
