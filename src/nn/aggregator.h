#ifndef HYBRIDGNN_NN_AGGREGATOR_H_
#define HYBRIDGNN_NN_AGGREGATOR_H_

#include "common/rng.h"
#include "graph/frontier.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace hybridgnn {

/// Mean aggregator (the AGG of Eq. 3, GraphSage-style): combines each
/// segment's self embedding with the mean of that segment's neighbor rows:
///   AGG(h_v, {h_j}) = tanh(W * concat(h_v, mean_j h_j) + b).
/// The paper reports no significant difference among mean/LSTM/pooling and
/// uses mean; we do the same.
///
/// The API is frontier-first: callers hand over the flat [m, dim] block of
/// gathered neighbor embeddings plus the MinibatchFrontier that segments it
/// (one segment per output row), instead of precomputing per-row means.
class MeanAggregator : public Module {
 public:
  /// `dim` is both the input and output embedding width (d_h in the paper).
  MeanAggregator(size_t dim, Rng& rng);

  /// `self` is [n, dim] (one row per segment), `neighbors` the flat
  /// [m, dim] block reduced per segment by `f` (n segments over m rows).
  /// Returns [n, dim]. An all-singleton frontier (every segment one row,
  /// e.g. MinibatchFrontier::IdentityRow() when folding an already-reduced
  /// representation back in) skips the reduce — the mean of one row is that
  /// row, bit for bit.
  ag::Var Forward(const MinibatchFrontier& f, const ag::Var& self,
                  const ag::Var& neighbors) const;

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  Linear combine_;
};

/// Max-pooling aggregator: each neighbor row goes through a shared
/// nonlinearity, then a per-segment elementwise max; provided for the
/// paper's "aggregator candidates" discussion and for the ablation bench.
class PoolingAggregator : public Module {
 public:
  PoolingAggregator(size_t dim, Rng& rng);

  /// `self` is [n, dim], `neighbors` the flat [m, dim] block; `f` segments
  /// the block (n segments). Pools SegmentMax(TransformNeighbors(block)).
  ag::Var Forward(const MinibatchFrontier& f, const ag::Var& self,
                  const ag::Var& neighbors) const;

  /// Applies the shared pre-pooling transform to a neighbor batch [m, dim].
  ag::Var TransformNeighbors(const ag::Var& neighbors) const;

 private:
  size_t dim_;
  Linear pre_;
  Linear combine_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_NN_AGGREGATOR_H_
