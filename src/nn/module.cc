#include "nn/module.h"

namespace hybridgnn {

size_t Module::num_scalar_parameters() const {
  size_t n = 0;
  for (const auto& p : params_) n += p->value.size();
  return n;
}

}  // namespace hybridgnn
