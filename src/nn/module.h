#ifndef HYBRIDGNN_NN_MODULE_H_
#define HYBRIDGNN_NN_MODULE_H_

#include <vector>

#include "tensor/autograd.h"

namespace hybridgnn {

/// Base class for trainable components: exposes the flat parameter list for
/// optimizer registration. Subclasses register each trainable Var once via
/// RegisterParameter in their constructor.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module (including registered
  /// submodules' parameters).
  const std::vector<ag::Var>& parameters() const { return params_; }

  /// Total scalar parameter count.
  size_t num_scalar_parameters() const;

 protected:
  void RegisterParameter(const ag::Var& p) { params_.push_back(p); }
  void RegisterSubmodule(const Module& m) {
    for (const auto& p : m.parameters()) params_.push_back(p);
  }

 private:
  std::vector<ag::Var> params_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_NN_MODULE_H_
