#include "nn/attention.h"

#include <cmath>

#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hybridgnn {

SelfAttention::SelfAttention(size_t in_dim, size_t key_dim, Rng& rng,
                             bool identity_values)
    : in_dim_(in_dim), key_dim_(key_dim), identity_values_(identity_values) {
  auto make = [&](ag::Var& dst) {
    Tensor w(in_dim, key_dim);
    XavierUniform(w, rng);
    dst = ag::Param(std::move(w));
    RegisterParameter(dst);
  };
  make(wq_);
  make(wk_);
  if (!identity_values_) make(wv_);
}

ag::Var SelfAttention::Forward(const ag::Var& h) const {
  const float inv_sqrt_dk =
      1.0f / std::sqrt(static_cast<float>(key_dim_));
  ag::Var q = ag::MatMul(h, wq_);
  ag::Var k = ag::MatMul(h, wk_);
  ag::Var logits = ag::Scale(ag::MatMul(q, ag::Transpose(k)), inv_sqrt_dk);
  ag::Var weights = ag::SoftmaxRows(logits);
  if (identity_values_) return ag::MatMul(weights, h);
  return ag::MatMul(weights, ag::MatMul(h, wv_));
}

Tensor SelfAttention::AttentionScores(const Tensor& h) const {
  const float inv_sqrt_dk =
      1.0f / std::sqrt(static_cast<float>(key_dim_));
  Tensor q = MatMul(h, wq_->value);
  Tensor k = MatMul(h, wk_->value);
  Tensor logits = Scale(MatMulTransB(q, k), inv_sqrt_dk);
  return SoftmaxRows(logits);
}

}  // namespace hybridgnn
