#include "serve/block_scorer.h"

#include <cassert>
#include <cstring>

#include "kernels/kernels.h"

namespace hybridgnn {

BlockScorer::BlockScorer(const EmbeddingStore* store, RelationId rel,
                         const float* query)
    : store_(store),
      dtype_(store->dtype()),
      dim_(store->dim()),
      num_rows_(store->NumRows(rel)),
      query_(query) {
  switch (dtype_) {
    case StoreDType::kF32:
      table_ = store->Table(rel).data();
      break;
    case StoreDType::kF16:
      qtable_ = store->RawTable(rel).data();
      f16_table_ = reinterpret_cast<const uint16_t*>(qtable_);
      break;
    case StoreDType::kI8:
      qtable_ = store->RawTable(rel).data();
      scales_ = store->RowScales(rel).data();
      zeros_ = store->RowZeros(rel).data();
      // ScoreBlockI8 folds the per-row affine into the dot with one
      // query-element sum, computed once per query.
      for (size_t j = 0; j < dim_; ++j) query_sum_ += query_[j];
      break;
  }
}

void BlockScorer::ScoreRange(size_t base, size_t count, double* out) const {
  switch (dtype_) {
    case StoreDType::kF32:
      kernels::ScoreBlock(query_, table_ + base * dim_, count, dim_, out);
      return;
    case StoreDType::kF16:
      kernels::ScoreBlockF16(query_, f16_table_ + base * dim_, count, dim_,
                             out);
      return;
    case StoreDType::kI8:
      kernels::ScoreBlockI8(query_, qtable_ + base * dim_, scales_ + base,
                            zeros_ + base, query_sum_, count, dim_, out);
      return;
  }
}

void BlockScorer::ScoreRows(const uint32_t* rows, size_t count, double* out) {
  assert(count <= kBlockRows);
  switch (dtype_) {
    case StoreDType::kF32: {
      if (gather_f32_.empty()) gather_f32_.resize(kBlockRows * dim_);
      float* dst = gather_f32_.data();
      for (size_t i = 0; i < count; ++i) {
        std::memcpy(dst + i * dim_, table_ + static_cast<size_t>(rows[i]) * dim_,
                    dim_ * sizeof(float));
      }
      kernels::ScoreBlock(query_, dst, count, dim_, out);
      return;
    }
    case StoreDType::kF16: {
      if (gather_bytes_.empty()) {
        gather_bytes_.resize(kBlockRows * dim_ * sizeof(uint16_t));
      }
      uint16_t* dst = reinterpret_cast<uint16_t*>(gather_bytes_.data());
      for (size_t i = 0; i < count; ++i) {
        std::memcpy(dst + i * dim_,
                    f16_table_ + static_cast<size_t>(rows[i]) * dim_,
                    dim_ * sizeof(uint16_t));
      }
      kernels::ScoreBlockF16(query_, dst, count, dim_, out);
      return;
    }
    case StoreDType::kI8: {
      if (gather_bytes_.empty()) {
        gather_bytes_.resize(kBlockRows * dim_);
        gather_scales_.resize(kBlockRows);
        gather_zeros_.resize(kBlockRows);
      }
      uint8_t* dst = gather_bytes_.data();
      for (size_t i = 0; i < count; ++i) {
        const size_t row = rows[i];
        std::memcpy(dst + i * dim_, qtable_ + row * dim_, dim_);
        gather_scales_[i] = scales_[row];
        gather_zeros_[i] = zeros_[row];
      }
      kernels::ScoreBlockI8(query_, dst, gather_scales_.data(),
                            gather_zeros_.data(), query_sum_, count, dim_,
                            out);
      return;
    }
  }
}

}  // namespace hybridgnn
