#include "serve/topk.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/timer.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "serve/block_scorer.h"

namespace hybridgnn {

namespace {

/// Bounded min-heap entry ordering: the heap's top is the *worst* kept
/// candidate — lowest score, ties resolved so that the larger node id is
/// evicted first (keeping the evaluator's "smaller id wins ties" rule).
struct WorseOnTop {
  bool operator()(const Recommendation& a, const Recommendation& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  }
};

/// Rows scored per block on both the dense scan and the gathered scans.
constexpr size_t kScoreBlockRows = BlockScorer::kBlockRows;

double DotDouble(const float* a, const float* b, size_t dim) {
  double s = 0.0;
  kernels::ScoreBlock(a, b, 1, dim, &s);
  return s;
}

}  // namespace

bool DeltaEdgeFilter::AddEdge(NodeId src, NodeId dst, RelationId rel) {
  if (rel >= extra_.size()) {
    ++num_dropped_;
    return false;
  }
  auto insert_sorted = [](std::vector<NodeId>& nbrs, NodeId u) {
    auto at = std::lower_bound(nbrs.begin(), nbrs.end(), u);
    if (at != nbrs.end() && *at == u) return false;
    nbrs.insert(at, u);
    return true;
  };
  auto& adj = extra_[rel];
  const bool fresh_fwd = insert_sorted(adj[src], dst);
  const bool fresh_rev = insert_sorted(adj[dst], src);
  if (fresh_fwd || fresh_rev) ++num_edges_;
  return true;
}

std::span<const NodeId> DeltaEdgeFilter::Excluded(NodeId v,
                                                  RelationId r) const {
  if (r >= extra_.size()) return {};
  auto it = extra_[r].find(v);
  if (it == extra_[r].end()) return {};
  return {it->second.data(), it->second.size()};
}

TopKRecommender::TopKRecommender(const EmbeddingStore* store,
                                 const MultiplexHeteroGraph* graph,
                                 TopKOptions options,
                                 const DeltaEdgeFilter* extra_filter,
                                 const NormCarryover* carryover)
    : store_(store),
      graph_(graph),
      options_(options),
      extra_filter_(extra_filter) {
  if (options_.cosine) {
    const size_t dim = store_->dim();
    row_norms_.resize(store_->num_relations());
    std::vector<float> dequant(dim);
    for (RelationId r = 0; r < store_->num_relations(); ++r) {
      const size_t rows = store_->NumRows(r);
      auto& norms = row_norms_[r];
      norms.resize(rows);
      // Carried-forward norms for this relation, when the caller vouches
      // for them. A row is reused iff the previous norms cover it and it is
      // not on the dirty list; everything else (new rows, changed rows,
      // missing carryover) is recomputed.
      const std::vector<float>* prev = nullptr;
      const std::vector<uint32_t>* dirty = nullptr;
      if (carryover != nullptr && carryover->prev_norms != nullptr &&
          r < carryover->prev_norms->size()) {
        prev = &(*carryover->prev_norms)[r];
        if (carryover->dirty_rows != nullptr &&
            r < carryover->dirty_rows->size()) {
          dirty = &(*carryover->dirty_rows)[r];
        }
      }
      const float* data = store_->dtype() == StoreDType::kF32
                              ? store_->Table(r).data()
                              : nullptr;
      size_t dirty_pos = 0;  // cursor into the ascending dirty list
      for (size_t i = 0; i < rows; ++i) {
        bool is_dirty = false;
        if (dirty != nullptr) {
          while (dirty_pos < dirty->size() && (*dirty)[dirty_pos] < i) {
            ++dirty_pos;
          }
          is_dirty = dirty_pos < dirty->size() && (*dirty)[dirty_pos] == i;
        }
        if (prev != nullptr && i < prev->size() && !is_dirty) {
          norms[i] = (*prev)[i];
          continue;
        }
        const float* row;
        if (data != nullptr) {
          row = data + i * dim;
        } else {
          store_->DequantizeRow(r, static_cast<uint32_t>(i), dequant.data());
          row = dequant.data();
        }
        norms[i] = static_cast<float>(std::sqrt(DotDouble(row, row, dim)));
      }
    }
  }
  ann_enabled_ = ResolveAnnEnabled(options_.ann);
  if (ann_enabled_) BuildAnnIndexes(carryover);
}

void TopKRecommender::BuildAnnIndexes(const NormCarryover* carryover) {
  static auto& build_ms = obs::Stage("serve/ann_build_ms");
  ann_.resize(store_->num_relations());
  AnnBuildOptions build = options_.ann_build;
  build.cosine = options_.cosine;
  for (RelationId r = 0; r < store_->num_relations(); ++r) {
    const size_t rows = store_->NumRows(r);
    // Small tables route to the exact scan: index traversal only wins once
    // the table dwarfs the candidate pool.
    if (rows < std::max<size_t>(2, options_.ann_min_rows)) continue;
    obs::ScopedTimer timer(build_ms);
    // Publish-time carryover: reuse / patch the previous index when the
    // relation's churn since the last publish is small.
    if (carryover != nullptr && carryover->prev_ann != nullptr &&
        r < carryover->prev_ann->size()) {
      const std::shared_ptr<const AnnIndex>& prev = (*carryover->prev_ann)[r];
      if (prev != nullptr && prev->options() == build &&
          prev->dim() == store_->dim() && prev->num_rows() <= rows) {
        std::span<const uint32_t> dirty;
        if (carryover->dirty_rows != nullptr &&
            r < carryover->dirty_rows->size()) {
          dirty = (*carryover->dirty_rows)[r];
        }
        if (dirty.empty() && prev->num_rows() == rows) {
          ann_[r] = prev;  // untouched relation: share the index outright
          continue;
        }
        // Appended rows in the dirty list are cheap inserts, not re-links;
        // only churn inside the previous index's row space degrades it.
        const auto relinked = static_cast<double>(
            std::lower_bound(dirty.begin(), dirty.end(),
                             static_cast<uint32_t>(prev->num_rows())) -
            dirty.begin());
        const double churn = relinked / static_cast<double>(prev->num_rows());
        if (churn <= build.max_patch_fraction) {
          auto patched = AnnIndex::Patched(*prev, *store_, r, dirty);
          if (patched.ok()) {
            ann_[r] = *std::move(patched);
            continue;
          }
        }
      }
    }
    auto built = AnnIndex::Build(*store_, r, build);
    // Build only fails on malformed options / empty tables, both excluded
    // above; a failure here still degrades to the exact scan rather than
    // taking serving down.
    if (built.ok()) ann_[r] = *std::move(built);
  }
}

StatusOr<std::vector<Recommendation>> TopKRecommender::Recommend(
    const TopKQuery& q) const {
  if (q.rel >= store_->num_relations()) {
    return Status::InvalidArgument("unknown relation id " +
                                   std::to_string(q.rel));
  }
  if (q.k == 0) return Status::InvalidArgument("k must be > 0");
  // A node beyond both the graph's and the store's id space is a malformed
  // query, not a miss: NotFound is reserved for known ids without a table
  // row. Streamed-in nodes live past the offline graph but inside the
  // published store's id space, so they stay servable.
  if (graph_ != nullptr && q.node >= graph_->num_nodes() &&
      q.node >= store_->num_nodes()) {
    return Status::InvalidArgument(
        "node " + std::to_string(q.node) + " is out of range (graph has " +
        std::to_string(graph_->num_nodes()) + " nodes, store covers " +
        std::to_string(store_->num_nodes()) + ")");
  }
  const size_t dim = store_->dim();
  const StoreDType dtype = store_->dtype();
  const uint32_t query_table_row = store_->RowOf(q.node, q.rel);
  if (query_table_row == EmbeddingStore::kNoRow) {
    return Status::NotFound("node " + std::to_string(q.node) +
                            " has no embedding under relation '" +
                            store_->relation_name(q.rel) + "'");
  }
  if (q.candidate_type != kInvalidNodeType) {
    if (graph_ == nullptr) {
      return Status::FailedPrecondition(
          "candidate_type filtering needs a graph-aware recommender");
    }
    if (q.candidate_type >= graph_->num_node_types()) {
      return Status::InvalidArgument("unknown node type id " +
                                     std::to_string(q.candidate_type));
    }
  }
  // The query side always scores as fp32: for quantized stores the row is
  // dequantized once up front (the kernels only quantize the candidate
  // side).
  std::vector<float> query_buf;
  const float* query_row;
  if (dtype == StoreDType::kF32) {
    query_row = store_->Table(q.rel).data() +
                static_cast<size_t>(query_table_row) * dim;
  } else {
    query_buf.resize(dim);
    store_->DequantizeRow(q.rel, query_table_row, query_buf.data());
    query_row = query_buf.data();
  }
  double query_norm = 1.0;
  if (options_.cosine) {
    query_norm = std::sqrt(DotDouble(query_row, query_row, dim));
    if (query_norm == 0.0) query_norm = 1.0;
  }
  std::span<const NodeId> train_nbrs;
  std::span<const NodeId> extra_excluded;
  if (q.exclude_train_neighbors) {
    if (graph_ != nullptr && q.rel < graph_->num_relations() &&
        q.node < graph_->num_nodes()) {
      train_nbrs = graph_->Neighbors(q.node, q.rel);  // sorted (CSR)
    }
    if (extra_filter_ != nullptr) {
      extra_excluded = extra_filter_->Excluded(q.node, q.rel);  // sorted
    }
  }
  // One dtype-dispatched scorer serves the dense scan, the gathered typed
  // scan, the ANN traversal, and the ANN re-rank.
  BlockScorer scorer(store_, q.rel, query_row);

  // Bounded min-heap over the candidate scan. `heap` is kept as a vector
  // with std::push/pop_heap so the final extraction can sort in place.
  std::vector<Recommendation> heap;
  heap.reserve(q.k + 1);
  const WorseOnTop worse;
  // Filters + heap maintenance for one scored candidate (`raw` is the plain
  // dot product; cosine normalization happens here so every scan path
  // shares it).
  auto consider = [&](NodeId cand, uint32_t row, double raw) {
    if (cand == q.node) return;
    if (!train_nbrs.empty() &&
        std::binary_search(train_nbrs.begin(), train_nbrs.end(), cand)) {
      return;
    }
    if (!extra_excluded.empty() &&
        std::binary_search(extra_excluded.begin(), extra_excluded.end(),
                           cand)) {
      return;
    }
    double s = raw;
    if (options_.cosine) {
      const float cn = row_norms_[q.rel][row];
      s /= query_norm * (cn == 0.0f ? 1.0f : cn);
    }
    const Recommendation rec{cand, static_cast<float>(s)};
    if (heap.size() < q.k) {
      heap.push_back(rec);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (worse(rec, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = rec;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  };

  // --- ANN candidate generation (sublinear path) ---
  if (ann_enabled_) {
    static auto& searches = obs::GlobalRegistry().GetCounter(
        "serve/ann_searches");
    static auto& fallbacks = obs::GlobalRegistry().GetCounter(
        "serve/ann_fallbacks");
    static auto& hops = obs::GlobalRegistry().GetCounter("serve/ann_hops");
    static auto& candidates = obs::GlobalRegistry().GetCounter(
        "serve/ann_candidates");
    static auto& rerank_rows = obs::GlobalRegistry().GetCounter(
        "serve/ann_rerank_rows");
    const AnnIndex* index =
        q.rel < ann_.size() ? ann_[q.rel].get() : nullptr;
    if (index == nullptr) {
      fallbacks.Add(1);  // unindexed (small) relation: exact scan below
    } else {
      searches.Add(1);
      // k-aware over-fetch: ask for enough pool that the exclusion / type
      // filters can eat candidates without starving the heap.
      const size_t pool_target = std::min(
          index->num_rows(),
          std::max(options_.ef_search, q.k * std::max<size_t>(
                                                 1, options_.over_fetch)));
      std::span<const float> norms;
      if (options_.cosine) norms = row_norms_[q.rel];
      std::vector<uint32_t> pool;
      AnnIndex::SearchStats stats;
      index->Search(scorer, pool_target, norms, &pool, &stats);
      hops.Add(stats.hops);
      candidates.Add(pool.size());
      // Re-rank the pool through the exact kernels in gathered blocks, then
      // run the same consider() filters the exact scan applies.
      double scores[kScoreBlockRows];
      for (size_t base = 0; base < pool.size(); base += kScoreBlockRows) {
        const size_t count = std::min(kScoreBlockRows, pool.size() - base);
        scorer.ScoreRows(pool.data() + base, count, scores);
        for (size_t i = 0; i < count; ++i) {
          const uint32_t row = pool[base + i];
          const NodeId cand = store_->RowNode(q.rel, row);
          if (q.candidate_type != kInvalidNodeType &&
              (cand >= graph_->num_nodes() ||
               graph_->node_type(cand) != q.candidate_type)) {
            continue;
          }
          consider(cand, row, scores[i]);
        }
      }
      rerank_rows.Add(pool.size());
      const size_t reachable =
          std::min(q.k, index->num_rows() > 0 ? index->num_rows() - 1 : 0);
      if (heap.size() >= reachable) {
        std::sort_heap(heap.begin(), heap.end(), worse);
        return heap;
      }
      // Filtering starved the pool (or the graph was unlucky): fall back to
      // the exact scan so ANN never changes what a query can return, only
      // how fast.
      fallbacks.Add(1);
      heap.clear();
    }
  }

  if (q.candidate_type != kInvalidNodeType) {
    // Type-filtered candidates hit scattered table rows; gather them into
    // block-sized buffers and score through the same kernels as the dense
    // scan (bitwise identical to the old per-row scoring — see
    // BlockScorer).
    uint32_t rows_buf[kScoreBlockRows];
    NodeId cand_buf[kScoreBlockRows];
    double scores[kScoreBlockRows];
    size_t filled = 0;
    auto flush = [&] {
      scorer.ScoreRows(rows_buf, filled, scores);
      for (size_t i = 0; i < filled; ++i) {
        consider(cand_buf[i], rows_buf[i], scores[i]);
      }
      filled = 0;
    };
    for (NodeId cand : graph_->NodesOfType(q.candidate_type)) {
      const uint32_t row = store_->RowOf(cand, q.rel);
      if (row == EmbeddingStore::kNoRow) continue;
      rows_buf[filled] = row;
      cand_buf[filled] = cand;
      if (++filled == kScoreBlockRows) flush();
    }
    if (filled > 0) flush();
  } else {
    // Dense scan: score contiguous blocks straight off the (64B-aligned,
    // possibly mmapped) table, then filter and push. Excluded rows waste a
    // dot each, but the blocked kernel is far faster than branching per
    // row.
    const size_t rows = store_->NumRows(q.rel);
    double scores[kScoreBlockRows];
    for (size_t base = 0; base < rows; base += kScoreBlockRows) {
      const size_t count = std::min(kScoreBlockRows, rows - base);
      scorer.ScoreRange(base, count, scores);
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = static_cast<uint32_t>(base + i);
        consider(store_->RowNode(q.rel, row), row, scores[i]);
      }
    }
  }

  std::sort_heap(heap.begin(), heap.end(), worse);  // best-first afterwards
  return heap;
}

std::vector<StatusOr<std::vector<Recommendation>>>
TopKRecommender::RecommendBatch(std::span<const TopKQuery> queries,
                                ThreadPool* pool) const {
  std::vector<StatusOr<std::vector<Recommendation>>> results(
      queries.size(),
      StatusOr<std::vector<Recommendation>>(
          Status::Internal("query not processed")));
  auto work = [&](size_t i) { results[i] = Recommend(queries[i]); };
  if (pool != nullptr) {
    RunParallel(pool, queries.size(), work);
  } else {
    RunParallel(ResolveNumThreads(options_.num_threads), queries.size(),
                work);
  }
  return results;
}

}  // namespace hybridgnn
