#include "serve/topk.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "kernels/kernels.h"

namespace hybridgnn {

namespace {

/// Bounded min-heap entry ordering: the heap's top is the *worst* kept
/// candidate — lowest score, ties resolved so that the larger node id is
/// evicted first (keeping the evaluator's "smaller id wins ties" rule).
struct WorseOnTop {
  bool operator()(const Recommendation& a, const Recommendation& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  }
};

/// Rows scored per ScoreBlock call on the dense (unfiltered) scan. Large
/// enough to amortize dispatch, small enough that the score buffer stays in
/// L1 and the query row stays hot.
constexpr size_t kScoreBlockRows = 256;

double DotDouble(const float* a, const float* b, size_t dim) {
  double s = 0.0;
  kernels::ScoreBlock(a, b, 1, dim, &s);
  return s;
}

}  // namespace

bool DeltaEdgeFilter::AddEdge(NodeId src, NodeId dst, RelationId rel) {
  if (rel >= extra_.size()) {
    ++num_dropped_;
    return false;
  }
  auto insert_sorted = [](std::vector<NodeId>& nbrs, NodeId u) {
    auto at = std::lower_bound(nbrs.begin(), nbrs.end(), u);
    if (at != nbrs.end() && *at == u) return false;
    nbrs.insert(at, u);
    return true;
  };
  auto& adj = extra_[rel];
  const bool fresh_fwd = insert_sorted(adj[src], dst);
  const bool fresh_rev = insert_sorted(adj[dst], src);
  if (fresh_fwd || fresh_rev) ++num_edges_;
  return true;
}

std::span<const NodeId> DeltaEdgeFilter::Excluded(NodeId v,
                                                  RelationId r) const {
  if (r >= extra_.size()) return {};
  auto it = extra_[r].find(v);
  if (it == extra_[r].end()) return {};
  return {it->second.data(), it->second.size()};
}

TopKRecommender::TopKRecommender(const EmbeddingStore* store,
                                 const MultiplexHeteroGraph* graph,
                                 TopKOptions options,
                                 const DeltaEdgeFilter* extra_filter,
                                 const NormCarryover* carryover)
    : store_(store),
      graph_(graph),
      options_(options),
      extra_filter_(extra_filter) {
  if (!options_.cosine) return;
  const size_t dim = store_->dim();
  row_norms_.resize(store_->num_relations());
  std::vector<float> dequant(dim);
  for (RelationId r = 0; r < store_->num_relations(); ++r) {
    const size_t rows = store_->NumRows(r);
    auto& norms = row_norms_[r];
    norms.resize(rows);
    // Carried-forward norms for this relation, when the caller vouches for
    // them. A row is reused iff the previous norms cover it and it is not
    // on the dirty list; everything else (new rows, changed rows, missing
    // carryover) is recomputed.
    const std::vector<float>* prev = nullptr;
    const std::vector<uint32_t>* dirty = nullptr;
    if (carryover != nullptr && carryover->prev_norms != nullptr &&
        r < carryover->prev_norms->size()) {
      prev = &(*carryover->prev_norms)[r];
      if (carryover->dirty_rows != nullptr &&
          r < carryover->dirty_rows->size()) {
        dirty = &(*carryover->dirty_rows)[r];
      }
    }
    const float* data =
        store_->dtype() == StoreDType::kF32 ? store_->Table(r).data() : nullptr;
    size_t dirty_pos = 0;  // cursor into the ascending dirty list
    for (size_t i = 0; i < rows; ++i) {
      bool is_dirty = false;
      if (dirty != nullptr) {
        while (dirty_pos < dirty->size() && (*dirty)[dirty_pos] < i) {
          ++dirty_pos;
        }
        is_dirty = dirty_pos < dirty->size() && (*dirty)[dirty_pos] == i;
      }
      if (prev != nullptr && i < prev->size() && !is_dirty) {
        norms[i] = (*prev)[i];
        continue;
      }
      const float* row;
      if (data != nullptr) {
        row = data + i * dim;
      } else {
        store_->DequantizeRow(r, static_cast<uint32_t>(i), dequant.data());
        row = dequant.data();
      }
      norms[i] = static_cast<float>(std::sqrt(DotDouble(row, row, dim)));
    }
  }
}

StatusOr<std::vector<Recommendation>> TopKRecommender::Recommend(
    const TopKQuery& q) const {
  if (q.rel >= store_->num_relations()) {
    return Status::InvalidArgument("unknown relation id " +
                                   std::to_string(q.rel));
  }
  if (q.k == 0) return Status::InvalidArgument("k must be > 0");
  const size_t dim = store_->dim();
  const StoreDType dtype = store_->dtype();
  const uint32_t query_table_row = store_->RowOf(q.node, q.rel);
  if (query_table_row == EmbeddingStore::kNoRow) {
    return Status::NotFound("node " + std::to_string(q.node) +
                            " has no embedding under relation '" +
                            store_->relation_name(q.rel) + "'");
  }
  // The query side always scores as fp32: for quantized stores the row is
  // dequantized once up front (the kernels only quantize the candidate
  // side).
  std::vector<float> query_buf;
  const float* query_row;
  if (dtype == StoreDType::kF32) {
    query_row = store_->Table(q.rel).data() +
                static_cast<size_t>(query_table_row) * dim;
  } else {
    query_buf.resize(dim);
    store_->DequantizeRow(q.rel, query_table_row, query_buf.data());
    query_row = query_buf.data();
  }
  // ScoreBlockI8 folds the per-row affine into the dot with one
  // query-element sum, computed once per query.
  double query_sum = 0.0;
  if (dtype == StoreDType::kI8) {
    for (size_t j = 0; j < dim; ++j) query_sum += query_row[j];
  }
  double query_norm = 1.0;
  if (options_.cosine) {
    query_norm = std::sqrt(DotDouble(query_row, query_row, dim));
    if (query_norm == 0.0) query_norm = 1.0;
  }
  std::span<const NodeId> train_nbrs;
  std::span<const NodeId> extra_excluded;
  if (q.exclude_train_neighbors) {
    if (graph_ != nullptr && q.rel < graph_->num_relations() &&
        q.node < graph_->num_nodes()) {
      train_nbrs = graph_->Neighbors(q.node, q.rel);  // sorted (CSR)
    }
    if (extra_filter_ != nullptr) {
      extra_excluded = extra_filter_->Excluded(q.node, q.rel);  // sorted
    }
  }
  const float* table = store_->Table(q.rel).data();  // null when quantized
  const uint8_t* qtable = store_->RawTable(q.rel).data();
  const uint16_t* f16_table = reinterpret_cast<const uint16_t*>(qtable);
  const float* scales = store_->RowScales(q.rel).data();
  const float* zeros = store_->RowZeros(q.rel).data();
  // Scores `count` consecutive table rows starting at `base` into `out`,
  // through whichever kernel matches the store's dtype.
  auto score_rows = [&](size_t base, size_t count, double* out) {
    switch (dtype) {
      case StoreDType::kF32:
        kernels::ScoreBlock(query_row, table + base * dim, count, dim, out);
        return;
      case StoreDType::kF16:
        kernels::ScoreBlockF16(query_row, f16_table + base * dim, count, dim,
                               out);
        return;
      case StoreDType::kI8:
        kernels::ScoreBlockI8(query_row, qtable + base * dim, scales + base,
                              zeros + base, query_sum, count, dim, out);
        return;
    }
  };

  // Bounded min-heap over the candidate scan. `heap` is kept as a vector
  // with std::push/pop_heap so the final extraction can sort in place.
  std::vector<Recommendation> heap;
  heap.reserve(q.k + 1);
  const WorseOnTop worse;
  // Filters + heap maintenance for one scored candidate (`raw` is the plain
  // dot product; cosine normalization happens here so both scan paths share
  // it).
  auto consider = [&](NodeId cand, uint32_t row, double raw) {
    if (cand == q.node) return;
    if (!train_nbrs.empty() &&
        std::binary_search(train_nbrs.begin(), train_nbrs.end(), cand)) {
      return;
    }
    if (!extra_excluded.empty() &&
        std::binary_search(extra_excluded.begin(), extra_excluded.end(),
                           cand)) {
      return;
    }
    double s = raw;
    if (options_.cosine) {
      const float cn = row_norms_[q.rel][row];
      s /= query_norm * (cn == 0.0f ? 1.0f : cn);
    }
    const Recommendation rec{cand, static_cast<float>(s)};
    if (heap.size() < q.k) {
      heap.push_back(rec);
      std::push_heap(heap.begin(), heap.end(), worse);
    } else if (worse(rec, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = rec;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  };

  if (q.candidate_type != kInvalidNodeType) {
    if (graph_ == nullptr) {
      return Status::FailedPrecondition(
          "candidate_type filtering needs a graph-aware recommender");
    }
    if (q.candidate_type >= graph_->num_node_types()) {
      return Status::InvalidArgument("unknown node type id " +
                                     std::to_string(q.candidate_type));
    }
    // Type-filtered candidates hit scattered table rows; score one row at a
    // time.
    for (NodeId cand : graph_->NodesOfType(q.candidate_type)) {
      const uint32_t row = store_->RowOf(cand, q.rel);
      if (row == EmbeddingStore::kNoRow) continue;
      double s = 0.0;
      score_rows(row, 1, &s);
      consider(cand, row, s);
    }
  } else {
    // Dense scan: score contiguous blocks straight off the (64B-aligned,
    // possibly mmapped) table, then filter and push. Excluded rows waste a
    // dot each, but the blocked kernel is far faster than branching per
    // row.
    const size_t rows = store_->NumRows(q.rel);
    double scores[kScoreBlockRows];
    for (size_t base = 0; base < rows; base += kScoreBlockRows) {
      const size_t count = std::min(kScoreBlockRows, rows - base);
      score_rows(base, count, scores);
      for (size_t i = 0; i < count; ++i) {
        const uint32_t row = static_cast<uint32_t>(base + i);
        consider(store_->RowNode(q.rel, row), row, scores[i]);
      }
    }
  }

  std::sort_heap(heap.begin(), heap.end(), worse);  // best-first afterwards
  return heap;
}

std::vector<StatusOr<std::vector<Recommendation>>>
TopKRecommender::RecommendBatch(std::span<const TopKQuery> queries,
                                ThreadPool* pool) const {
  std::vector<StatusOr<std::vector<Recommendation>>> results(
      queries.size(),
      StatusOr<std::vector<Recommendation>>(
          Status::Internal("query not processed")));
  auto work = [&](size_t i) { results[i] = Recommend(queries[i]); };
  if (pool != nullptr) {
    RunParallel(pool, queries.size(), work);
  } else {
    RunParallel(ResolveNumThreads(options_.num_threads), queries.size(),
                work);
  }
  return results;
}

}  // namespace hybridgnn
