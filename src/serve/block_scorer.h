#ifndef HYBRIDGNN_SERVE_BLOCK_SCORER_H_
#define HYBRIDGNN_SERVE_BLOCK_SCORER_H_

#include <cstdint>
#include <vector>

#include "serve/embedding_store.h"

namespace hybridgnn {

/// Per-query scorer over one relation's table of an EmbeddingStore,
/// dispatching to whichever ScoreBlock kernel matches the store's dtype
/// (fp32 / fp16 / int8). Two entry points:
///
///   * ScoreRange — `count` consecutive table rows starting at `base`,
///     straight off the (64B-aligned, possibly mmapped) table. This is the
///     dense top-K scan path.
///   * ScoreRows — `count` scattered table rows, gathered into a contiguous
///     block buffer (payload plus, for int8, the per-row scales/zeros) and
///     scored through the same kernels. This is the type-filtered candidate
///     path and the ANN search/re-rank path.
///
/// Per-row arithmetic is identical between the two: every ScoreBlock-family
/// kernel accumulates each output row independently of its neighbors in the
/// block, so gathering rows into a different buffer produces bitwise the
/// same scores as scoring them one at a time in place (pinned by
/// tests/ann_test.cc's differential suite).
///
/// One instance serves one (query row, relation) pair; the int8 kernel's
/// per-query element sum is computed once at construction. Instances hold
/// gather scratch, so they are cheap to reuse across blocks but not safe to
/// share between threads.
class BlockScorer {
 public:
  /// Rows per gathered block; ScoreRows accepts at most this many rows per
  /// call. Matches the dense scan's block size: large enough to amortize
  /// dispatch, small enough that the block stays in L1.
  static constexpr size_t kBlockRows = 256;

  /// `store` must outlive the scorer; `query` is a dim()-length fp32 row
  /// (already dequantized for quantized stores) that must stay valid for
  /// every Score* call.
  BlockScorer(const EmbeddingStore* store, RelationId rel, const float* query);

  size_t num_rows() const { return num_rows_; }
  size_t dim() const { return dim_; }

  /// out[i] = dot(query, table row base+i), accumulated the way the dtype's
  /// kernel accumulates. `count` is unbounded (the kernels take any row
  /// count).
  void ScoreRange(size_t base, size_t count, double* out) const;

  /// out[i] = dot(query, table row rows[i]) for `count` <= kBlockRows
  /// scattered rows, gathered then scored in one kernel call. Bitwise equal
  /// to `ScoreRange(rows[i], 1, &out[i])` per row.
  void ScoreRows(const uint32_t* rows, size_t count, double* out);

 private:
  const EmbeddingStore* store_;
  StoreDType dtype_;
  size_t dim_ = 0;
  size_t num_rows_ = 0;
  const float* query_ = nullptr;
  const float* table_ = nullptr;        // kF32
  const uint8_t* qtable_ = nullptr;     // kF16/kI8 payload
  const uint16_t* f16_table_ = nullptr; // kF16 view of qtable_
  const float* scales_ = nullptr;       // kI8
  const float* zeros_ = nullptr;        // kI8
  double query_sum_ = 0.0;              // kI8 affine fold

  // Gather scratch for ScoreRows (lazily sized to kBlockRows * dim).
  std::vector<float> gather_f32_;
  std::vector<uint8_t> gather_bytes_;   // fp16 halves or int8 codes
  std::vector<float> gather_scales_;
  std::vector<float> gather_zeros_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_BLOCK_SCORER_H_
