#include "serve/metrics.h"

#include <cstdio>

namespace hybridgnn {

MetricsSnapshot ServeMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.requests = requests.load(std::memory_order_relaxed);
  s.errors = errors.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.items_returned = items_returned.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(s.requests) / s.batches : 0.0;
  s.latency_p50_ms = latency.PercentileMs(50.0);
  s.latency_p99_ms = latency.PercentileMs(99.0);
  s.latency_mean_ms = latency.MeanMs();
  return s;
}

std::string MetricsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "requests=%llu errors=%llu batches=%llu items=%llu "
                "batch_size=%.2f latency_ms{p50=%.3f p99=%.3f mean=%.3f}",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(items_returned),
                mean_batch_size, latency_p50_ms, latency_p99_ms,
                latency_mean_ms);
  return buf;
}

}  // namespace hybridgnn
