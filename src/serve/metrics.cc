#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hybridgnn {

namespace {

/// Bucket index for a latency of `ms` milliseconds: floor(log2(us)),
/// clamped into [0, kNumBuckets).
size_t BucketIndex(double ms) {
  const double us = ms * 1e3;
  if (us < 1.0) return 0;
  const int b = static_cast<int>(std::floor(std::log2(us)));
  return std::min<size_t>(static_cast<size_t>(std::max(b, 0)),
                          LatencyHistogram::kNumBuckets - 1);
}

/// Upper bound of bucket i in milliseconds.
double BucketUpperMs(size_t i) { return std::ldexp(1.0, i + 1) * 1e-3; }

}  // namespace

void LatencyHistogram::Record(double ms) {
  if (ms < 0.0) ms = 0.0;
  buckets_[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<uint64_t>(ms * 1e6),
                         std::memory_order_relaxed);
}

double LatencyHistogram::MeanMs() const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return total_nanos_.load(std::memory_order_relaxed) * 1e-6 /
         static_cast<double>(n);
}

double LatencyHistogram::PercentileMs(double pct) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  // Rank of the requested percentile, 1-based (p100 -> last observation).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(pct / 100.0 * n)));
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperMs(i);
  }
  return BucketUpperMs(kNumBuckets - 1);
}

MetricsSnapshot ServeMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.requests = requests.load(std::memory_order_relaxed);
  s.errors = errors.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.items_returned = items_returned.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(s.requests) / s.batches : 0.0;
  s.latency_p50_ms = latency.PercentileMs(50.0);
  s.latency_p99_ms = latency.PercentileMs(99.0);
  s.latency_mean_ms = latency.MeanMs();
  return s;
}

std::string MetricsSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "requests=%llu errors=%llu batches=%llu items=%llu "
                "batch_size=%.2f latency_ms{p50=%.3f p99=%.3f mean=%.3f}",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(items_returned),
                mean_batch_size, latency_p50_ms, latency_p99_ms,
                latency_mean_ms);
  return buf;
}

}  // namespace hybridgnn
