#include "serve/metrics.h"

#include <cstdio>

namespace hybridgnn {

MetricsSnapshot ServeMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.requests = requests.load(std::memory_order_relaxed);
  s.errors = errors.load(std::memory_order_relaxed);
  s.batches = batches.load(std::memory_order_relaxed);
  s.items_returned = items_returned.load(std::memory_order_relaxed);
  s.shed = shed.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses.load(std::memory_order_relaxed);
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(s.requests) / s.batches : 0.0;
  s.latency_p50_ms = latency.PercentileMs(50.0);
  s.latency_p99_ms = latency.PercentileMs(99.0);
  s.latency_mean_ms = latency.MeanMs();
  s.queue_wait_p50_ms = queue_wait.PercentileMs(50.0);
  s.queue_wait_p99_ms = queue_wait.PercentileMs(99.0);
  s.batch_service_p50_ms = batch_service.PercentileMs(50.0);
  s.batch_service_p99_ms = batch_service.PercentileMs(99.0);
  return s;
}

std::string MetricsSnapshot::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu errors=%llu batches=%llu items=%llu shed=%llu "
      "deadline_exceeded=%llu cache{hit=%llu miss=%llu} batch_size=%.2f "
      "latency_ms{p50=%.3f p99=%.3f mean=%.3f} "
      "queue_wait_ms{p50=%.3f p99=%.3f} batch_service_ms{p50=%.3f p99=%.3f}",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(items_returned),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), mean_batch_size,
      latency_p50_ms, latency_p99_ms, latency_mean_ms, queue_wait_p50_ms,
      queue_wait_p99_ms, batch_service_p50_ms, batch_service_p99_ms);
  return buf;
}

}  // namespace hybridgnn
