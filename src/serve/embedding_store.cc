#include "serve/embedding_store.h"

#include <sys/mman.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "kernels/f16.h"

namespace hybridgnn {

MmapRegion::~MmapRegion() {
  if (base != nullptr && length > 0) munmap(base, length);
}

const char* StoreDTypeName(StoreDType t) {
  switch (t) {
    case StoreDType::kF32:
      return "fp32";
    case StoreDType::kF16:
      return "fp16";
    case StoreDType::kI8:
      return "int8";
  }
  return "unknown";
}

size_t StoreDTypeBytes(StoreDType t) {
  switch (t) {
    case StoreDType::kF32:
      return 4;
    case StoreDType::kF16:
      return 2;
    case StoreDType::kI8:
      return 1;
  }
  return 0;
}

Status EmbeddingStore::IndexTable(RelationTable& table, size_t num_nodes) {
  table.node_to_row.assign(num_nodes, kNoRow);
  for (size_t row = 0; row < table.row_to_node.size(); ++row) {
    const NodeId v = table.row_to_node[row];
    if (v >= num_nodes) {
      return Status::InvalidArgument(
          "table '" + table.name + "': node id " + std::to_string(v) +
          " out of range (num_nodes=" + std::to_string(num_nodes) + ")");
    }
    if (table.node_to_row[v] != kNoRow) {
      return Status::InvalidArgument("table '" + table.name +
                                     "': duplicate node id " +
                                     std::to_string(v));
    }
    table.node_to_row[v] = static_cast<uint32_t>(row);
  }
  return Status::OK();
}

StatusOr<EmbeddingStore> EmbeddingStore::FromTables(
    std::string model_name, size_t num_nodes, std::vector<TableInit> tables) {
  EmbeddingStore store;
  store.model_name_ = std::move(model_name);
  store.num_nodes_ = num_nodes;
  size_t dim = 0;
  for (const auto& t : tables) {
    if (t.data.rows() != t.row_to_node.size()) {
      return Status::InvalidArgument(
          "table '" + t.name + "': " + std::to_string(t.data.rows()) +
          " rows but " + std::to_string(t.row_to_node.size()) +
          " node mappings");
    }
    if (dim == 0) dim = t.data.cols();
    if (t.data.cols() != dim && t.data.rows() > 0) {
      return Status::InvalidArgument("table '" + t.name +
                                     "': dim mismatch across relations");
    }
  }
  if (dim == 0) {
    return Status::InvalidArgument("embedding store needs dim > 0");
  }
  store.dim_ = dim;
  store.tables_.reserve(tables.size());
  store.owned_.reserve(tables.size());
  for (auto& t : tables) {
    RelationTable rt;
    rt.name = std::move(t.name);
    rt.row_to_node = std::move(t.row_to_node);
    std::vector<float> data(t.data.data(), t.data.data() + t.data.size());
    store.owned_.push_back(std::move(data));
    rt.data = std::span<const float>(store.owned_.back().data(),
                                     store.owned_.back().size());
    HYBRIDGNN_RETURN_IF_ERROR(IndexTable(rt, num_nodes));
    store.tables_.push_back(std::move(rt));
  }
  return store;
}

StatusOr<EmbeddingStore> EmbeddingStore::Quantized(const EmbeddingStore& src,
                                                   StoreDType dtype) {
  if (src.dtype_ != StoreDType::kF32) {
    return Status::InvalidArgument(
        "quantization source must be an fp32 store (got " +
        std::string(StoreDTypeName(src.dtype_)) + ")");
  }
  if (dtype == StoreDType::kF32) {
    return Status::InvalidArgument("quantization target must be fp16 or int8");
  }
  EmbeddingStore store;
  store.model_name_ = src.model_name_;
  store.num_nodes_ = src.num_nodes_;
  store.dim_ = src.dim_;
  store.dtype_ = dtype;
  const size_t dim = src.dim_;
  store.tables_.reserve(src.tables_.size());
  for (const RelationTable& in : src.tables_) {
    RelationTable rt;
    rt.name = in.name;
    rt.row_to_node = in.row_to_node;
    rt.node_to_row = in.node_to_row;
    const size_t rows = in.row_to_node.size();
    const float* data = in.data.data();
    if (dtype == StoreDType::kF16) {
      std::vector<uint8_t> bytes(rows * dim * sizeof(uint16_t));
      uint16_t* out = reinterpret_cast<uint16_t*>(bytes.data());
      for (size_t i = 0; i < rows * dim; ++i) {
        out[i] = kernels::F32ToF16(data[i]);
      }
      store.owned_bytes_.push_back(std::move(bytes));
      rt.qdata = std::span<const uint8_t>(store.owned_bytes_.back());
    } else {  // kI8: per-row affine min/max
      std::vector<uint8_t> bytes(rows * dim);
      // Scales then zeros, back to back in one owned float buffer.
      std::vector<float> affine(2 * rows);
      for (size_t i = 0; dim > 0 && i < rows; ++i) {
        const float* row = data + i * dim;
        float lo = row[0], hi = row[0];
        for (size_t j = 1; j < dim; ++j) {
          lo = std::min(lo, row[j]);
          hi = std::max(hi, row[j]);
        }
        const float scale = (hi - lo) / 255.0f;
        affine[i] = scale;
        affine[rows + i] = lo;
        uint8_t* q = bytes.data() + i * dim;
        if (scale == 0.0f) {
          std::memset(q, 0, dim);  // constant row: dequant == zero point
          continue;
        }
        const float inv = 255.0f / (hi - lo);
        for (size_t j = 0; j < dim; ++j) {
          const float scaled = (row[j] - lo) * inv;
          q[j] = static_cast<uint8_t>(std::lrintf(
              std::min(255.0f, std::max(0.0f, scaled))));
        }
      }
      store.owned_bytes_.push_back(std::move(bytes));
      store.owned_.push_back(std::move(affine));
      rt.qdata = std::span<const uint8_t>(store.owned_bytes_.back());
      const float* a = store.owned_.back().data();
      rt.scales = std::span<const float>(a, rows);
      rt.zeros = std::span<const float>(a + rows, rows);
    }
    store.tables_.push_back(std::move(rt));
  }
  return store;
}

void EmbeddingStore::DequantizeRow(RelationId r, uint32_t row,
                                   float* out) const {
  const RelationTable& t = tables_[r];
  switch (dtype_) {
    case StoreDType::kF32:
      std::memcpy(out, t.data.data() + static_cast<size_t>(row) * dim_,
                  dim_ * sizeof(float));
      return;
    case StoreDType::kF16: {
      const uint16_t* q = reinterpret_cast<const uint16_t*>(t.qdata.data()) +
                          static_cast<size_t>(row) * dim_;
      for (size_t j = 0; j < dim_; ++j) out[j] = kernels::F16ToF32(q[j]);
      return;
    }
    case StoreDType::kI8: {
      const uint8_t* q = t.qdata.data() + static_cast<size_t>(row) * dim_;
      const float scale = t.scales[row];
      const float zero = t.zeros[row];
      for (size_t j = 0; j < dim_; ++j) {
        out[j] = zero + scale * static_cast<float>(q[j]);
      }
      return;
    }
  }
}

RelationId EmbeddingStore::FindRelation(const std::string& name) const {
  for (size_t r = 0; r < tables_.size(); ++r) {
    if (tables_[r].name == name) return static_cast<RelationId>(r);
  }
  return kInvalidRelation;
}

}  // namespace hybridgnn
