#include "serve/embedding_store.h"

#include <sys/mman.h>

#include <cstring>
#include <utility>

namespace hybridgnn {

MmapRegion::~MmapRegion() {
  if (base != nullptr && length > 0) munmap(base, length);
}

Status EmbeddingStore::IndexTable(RelationTable& table, size_t num_nodes) {
  table.node_to_row.assign(num_nodes, kNoRow);
  for (size_t row = 0; row < table.row_to_node.size(); ++row) {
    const NodeId v = table.row_to_node[row];
    if (v >= num_nodes) {
      return Status::InvalidArgument(
          "table '" + table.name + "': node id " + std::to_string(v) +
          " out of range (num_nodes=" + std::to_string(num_nodes) + ")");
    }
    if (table.node_to_row[v] != kNoRow) {
      return Status::InvalidArgument("table '" + table.name +
                                     "': duplicate node id " +
                                     std::to_string(v));
    }
    table.node_to_row[v] = static_cast<uint32_t>(row);
  }
  return Status::OK();
}

StatusOr<EmbeddingStore> EmbeddingStore::FromTables(
    std::string model_name, size_t num_nodes, std::vector<TableInit> tables) {
  EmbeddingStore store;
  store.model_name_ = std::move(model_name);
  store.num_nodes_ = num_nodes;
  size_t dim = 0;
  for (const auto& t : tables) {
    if (t.data.rows() != t.row_to_node.size()) {
      return Status::InvalidArgument(
          "table '" + t.name + "': " + std::to_string(t.data.rows()) +
          " rows but " + std::to_string(t.row_to_node.size()) +
          " node mappings");
    }
    if (dim == 0) dim = t.data.cols();
    if (t.data.cols() != dim && t.data.rows() > 0) {
      return Status::InvalidArgument("table '" + t.name +
                                     "': dim mismatch across relations");
    }
  }
  if (dim == 0) {
    return Status::InvalidArgument("embedding store needs dim > 0");
  }
  store.dim_ = dim;
  store.tables_.reserve(tables.size());
  store.owned_.reserve(tables.size());
  for (auto& t : tables) {
    RelationTable rt;
    rt.name = std::move(t.name);
    rt.row_to_node = std::move(t.row_to_node);
    std::vector<float> data(t.data.data(), t.data.data() + t.data.size());
    store.owned_.push_back(std::move(data));
    rt.data = std::span<const float>(store.owned_.back().data(),
                                     store.owned_.back().size());
    HYBRIDGNN_RETURN_IF_ERROR(IndexTable(rt, num_nodes));
    store.tables_.push_back(std::move(rt));
  }
  return store;
}

RelationId EmbeddingStore::FindRelation(const std::string& name) const {
  for (size_t r = 0; r < tables_.size(); ++r) {
    if (tables_[r].name == name) return static_cast<RelationId>(r);
  }
  return kInvalidRelation;
}

}  // namespace hybridgnn
