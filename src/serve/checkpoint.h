#ifndef HYBRIDGNN_SERVE_CHECKPOINT_H_
#define HYBRIDGNN_SERVE_CHECKPOINT_H_

#include <string>

#include "common/statusor.h"
#include "eval/embedding_model.h"
#include "graph/graph.h"
#include "serve/embedding_store.h"

namespace hybridgnn {

/// The `.hgc` (HybridGnn Checkpoint) binary format, versions 1 and 2.
///
/// Layout (all integers little-or-big endian as written; the endian tag
/// lets a reader on the other byte order reject the file cleanly):
///
///   [ 64-byte header ]
///     0   u8[4]  magic "HGC1"
///     4   u16    endian tag 0xFEFF (reads as 0xFFFE on a foreign-endian host)
///     6   u16    format version (1 = fp32, 2 = quantized)
///     8   u64    num_relations
///     16  u64    num_nodes (size of the node-id space)
///     24  u64    dim
///     32  u64    meta_bytes (size of the metadata blob)
///     40  u64    payload_bytes (everything after the header == file size - 64)
///     48  u64    payload checksum (FNV-1a 64 over the payload bytes)
///     56  u64    header checksum  (FNV-1a 64 over header bytes [0, 56))
///   [ metadata blob, meta_bytes bytes ]
///     v2 only: u8 dtype (StoreDType; 1 = fp16, 2 = int8)
///     u32 model-name length + bytes, then per relation:
///     u32 name length + bytes, u64 num_rows, num_rows * u32 row->node ids,
///     and (v2 int8 only) num_rows f32 scales + num_rows f32 zero points
///   [ zero padding to the next 64-byte file offset ]
///   [ per relation, in id order: num_rows * dim element table
///     (f32 in v1; f16 halfwords or u8 codes in v2),
///     each table start padded to a 64-byte file offset ]
///
/// A version-1 file written today is byte-identical to one written before
/// quantization existed — fp32 stores always serialize as v1, so old
/// readers keep working and the round-trip goldens stay pinned. Version 2
/// is only emitted for stores built by EmbeddingStore::Quantized.
///
/// The 64-byte table alignment is what makes zero-copy mmap loading valid:
/// every table pointer handed out by EmbeddingStore is at least 64-byte
/// aligned, so float/SIMD access is safe straight off the map.
inline constexpr char kCheckpointMagic[4] = {'H', 'G', 'C', '1'};
inline constexpr uint16_t kCheckpointEndianTag = 0xFEFF;
inline constexpr uint16_t kCheckpointVersion = 1;
inline constexpr uint16_t kCheckpointVersionQuantized = 2;
inline constexpr size_t kCheckpointHeaderBytes = 64;

/// How LoadCheckpoint materializes the tables.
enum class LoadMode : int {
  /// Read the file and copy tables into owned heap memory. The file can be
  /// deleted afterwards; costs one full copy.
  kCopy = 0,
  /// Map the file read-only and point the store's tables straight into the
  /// mapping (zero-copy). The mapping lives exactly as long as the returned
  /// EmbeddingStore; deleting the file while the store is alive is safe on
  /// POSIX (the mapping keeps the inode), truncating it is not.
  kMmap = 1,
};

/// Serializes an in-memory store to `path` in the `.hgc` format — version 1
/// for fp32 stores (bit-identical to the pre-quantization writer), version
/// 2 for fp16/int8 stores. Writes to `path` directly; on error the file may
/// be left partially written (callers that need atomicity should write to a
/// temp path and rename).
Status WriteCheckpoint(const EmbeddingStore& store, const std::string& path);

/// Parses "fp32" / "fp16" / "int8" (the StoreDTypeName spellings) into a
/// StoreDType — the flag-parsing helper for CLI / bench quantize options.
StatusOr<StoreDType> ParseStoreDType(const std::string& name);

/// Materializes a fitted model's per-relationship embedding tables into an
/// owning EmbeddingStore: for every relation of `graph` one
/// num_nodes x dim table (row v = model.Embedding(v, r)), built through the
/// batched EmbeddingsFor export hook, chunked across `num_threads` workers
/// (0 defers to HYBRIDGNN_THREADS). Output is independent of the thread
/// count.
StatusOr<EmbeddingStore> BuildStore(const EmbeddingModel& model,
                                    const MultiplexHeteroGraph& graph,
                                    size_t num_threads = 0);

/// BuildStore + WriteCheckpoint: the one-call "freeze this model" path.
Status SaveCheckpoint(const EmbeddingModel& model,
                      const MultiplexHeteroGraph& graph,
                      const std::string& path, size_t num_threads = 0);

/// Loads a `.hgc` file. Every integrity violation — short file, bad magic,
/// foreign endianness, version skew, size inconsistencies, checksum
/// mismatch — comes back as a non-OK Status; no partial store is ever
/// returned.
StatusOr<EmbeddingStore> LoadCheckpoint(const std::string& path,
                                        LoadMode mode = LoadMode::kCopy);

/// FNV-1a 64-bit hash, the checksum used by the `.hgc` header. Exposed for
/// tests that craft corrupted files.
uint64_t Fnv1a64(const void* data, size_t length);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_CHECKPOINT_H_
