#ifndef HYBRIDGNN_SERVE_TOPK_H_
#define HYBRIDGNN_SERVE_TOPK_H_

#include <span>
#include <vector>

#include "common/statusor.h"
#include "common/threadpool.h"
#include "graph/graph.h"
#include "serve/embedding_store.h"

namespace hybridgnn {

/// Engine-wide retrieval options.
struct TopKOptions {
  /// Worker threads for RecommendBatch when no external pool is supplied.
  /// 0 defers to HYBRIDGNN_THREADS; 1 runs serially. Results are identical
  /// for every thread count — queries land in indexed slots.
  size_t num_threads = 0;
  /// Rank by cosine similarity instead of raw dot product: both sides are
  /// L2-normalized (per-row candidate norms are precomputed at
  /// construction, so the per-query cost is one extra multiply per
  /// candidate).
  bool cosine = false;
};

/// One retrieval request: top-`k` nodes for `node` under relationship `rel`
/// (Eq. 10's argmax over sigma(dot(e*_{u,r}, e*_{v,r})), which shares its
/// argsort with the raw dot).
struct TopKQuery {
  NodeId node = 0;
  RelationId rel = 0;
  size_t k = 10;
  /// Restrict candidates to this node type (needs a graph); kInvalidNodeType
  /// means every row of the relation's table is a candidate.
  NodeTypeId candidate_type = kInvalidNodeType;
  /// Drop candidates already linked to `node` under `rel` in the training
  /// graph — the standard "don't recommend what the user already has"
  /// filter. Ignored when the recommender has no graph.
  bool exclude_train_neighbors = true;
};

struct Recommendation {
  NodeId node = 0;
  float score = 0.0f;
};

/// Brute-force dot-product top-K over a frozen EmbeddingStore: for each
/// query, scans the relation's table once, keeping the best k in a bounded
/// min-heap (O(rows * dim + rows * log k), no full sort, no per-candidate
/// allocation). Query batches fan out across a thread pool. Stateless apart
/// from precomputed norms, so one instance serves any number of threads.
///
/// Ordering is deterministic: descending score, ties broken by ascending
/// node id — the same rule the offline evaluator uses.
class TopKRecommender {
 public:
  /// `graph` (optional) enables candidate typing and training-neighbor
  /// exclusion; it must outlive the recommender, as must `store`.
  TopKRecommender(const EmbeddingStore* store,
                  const MultiplexHeteroGraph* graph, TopKOptions options);

  /// Answers one query.
  StatusOr<std::vector<Recommendation>> Recommend(const TopKQuery& q) const;

  /// Answers a batch, one result slot per query, parallel across
  /// `options.num_threads` (or `pool` when given — the RecommendService
  /// path, which reuses one pool across micro-batches).
  std::vector<StatusOr<std::vector<Recommendation>>> RecommendBatch(
      std::span<const TopKQuery> queries, ThreadPool* pool = nullptr) const;

  const EmbeddingStore& store() const { return *store_; }

 private:
  const EmbeddingStore* store_;
  const MultiplexHeteroGraph* graph_;
  TopKOptions options_;
  /// Per-relation, per-row L2 norms; only filled in cosine mode.
  std::vector<std::vector<float>> row_norms_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_TOPK_H_
