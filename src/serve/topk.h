#ifndef HYBRIDGNN_SERVE_TOPK_H_
#define HYBRIDGNN_SERVE_TOPK_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "common/threadpool.h"
#include "graph/graph.h"
#include "serve/ann/ann_index.h"
#include "serve/embedding_store.h"

namespace hybridgnn {

/// Engine-wide retrieval options.
struct TopKOptions {
  /// Worker threads for RecommendBatch when no external pool is supplied.
  /// 0 defers to HYBRIDGNN_THREADS; 1 runs serially. Results are identical
  /// for every thread count — queries land in indexed slots.
  size_t num_threads = 0;
  /// Rank by cosine similarity instead of raw dot product: both sides are
  /// L2-normalized (per-row candidate norms are precomputed at
  /// construction, so the per-query cost is one extra multiply per
  /// candidate).
  bool cosine = false;
  /// Sublinear candidate generation: build an HNSW index per relation at
  /// construction and answer queries by searching it, then re-ranking the
  /// candidate pool through the exact ScoreBlock kernels (DESIGN.md §17).
  /// The env var HYBRIDGNN_ANN=on|off overrides this at runtime. Scores and
  /// filters are always exact — ANN only shrinks the candidate set — and
  /// any query the index cannot serve confidently (unindexed relation,
  /// under-filled pool after filtering) falls back to the exact scan.
  bool ann = false;
  /// Beam width of the level-0 ANN search; also the floor of the candidate
  /// pool size. Larger = higher recall, slower.
  size_t ef_search = 64;
  /// k-aware over-fetch: the ANN pool holds at least k * over_fetch
  /// candidates, so train-neighbor / type / delta-edge filtering can drop
  /// candidates without starving the top-k.
  size_t over_fetch = 4;
  /// Relations with fewer rows than this are never indexed — the exact
  /// block scan beats index traversal on small tables.
  size_t ann_min_rows = 4096;
  /// HNSW construction parameters (cosine is filled from `cosine` above).
  AnnBuildOptions ann_build;
};

/// One retrieval request: top-`k` nodes for `node` under relationship `rel`
/// (Eq. 10's argmax over sigma(dot(e*_{u,r}, e*_{v,r})), which shares its
/// argsort with the raw dot).
struct TopKQuery {
  NodeId node = 0;
  RelationId rel = 0;
  size_t k = 10;
  /// Restrict candidates to this node type (needs a graph); kInvalidNodeType
  /// means every row of the relation's table is a candidate.
  NodeTypeId candidate_type = kInvalidNodeType;
  /// Drop candidates already linked to `node` under `rel` in the training
  /// graph — the standard "don't recommend what the user already has"
  /// filter. Ignored when the recommender has no graph.
  bool exclude_train_neighbors = true;
};

struct Recommendation {
  NodeId node = 0;
  float score = 0.0f;
};

/// Extra per-relation exclusion adjacency layered on top of the training
/// graph's neighbor filter — the serving-side view of streamed delta edges.
/// The streaming path rebuilds one of these on every embedding-store swap
/// (see stream/live_store.h) so "don't recommend what the user already has"
/// keeps holding for interactions that arrived after the checkpoint froze.
/// Immutable once built; lookups are lock-free and safe from any thread.
class DeltaEdgeFilter {
 public:
  DeltaEdgeFilter() = default;
  explicit DeltaEdgeFilter(size_t num_relations) : extra_(num_relations) {}

  /// Registers an undirected (src, dst) exclusion under `rel`; both
  /// directions become invisible to Recommend. Returns true when the edge
  /// was recorded. A `rel` beyond the filter's relation space cannot be
  /// honored — the edge is counted in num_dropped() and false comes back,
  /// so callers can surface the mismatch instead of silently losing the
  /// exclusion. An edge is new if either direction was absent (the two
  /// directions can disagree after a self-loop or a partial earlier
  /// insert), so counting keys off both inserts.
  bool AddEdge(NodeId src, NodeId dst, RelationId rel);

  /// Sorted extra exclusions of (v, r); empty when none.
  std::span<const NodeId> Excluded(NodeId v, RelationId r) const;

  bool empty() const { return num_edges_ == 0; }
  size_t num_edges() const { return num_edges_; }
  /// Edges rejected by AddEdge because their relation id was out of range.
  size_t num_dropped() const { return num_dropped_; }

 private:
  std::vector<std::unordered_map<NodeId, std::vector<NodeId>>> extra_;
  size_t num_edges_ = 0;
  size_t num_dropped_ = 0;
};

/// Cosine-norm carry-forward across store republishes. Recomputing every
/// row norm on a LiveEmbeddingStore::Publish is O(rows * dim) even when a
/// refresh touched a handful of rows; this hands the previous recommender's
/// norms plus the set of rows that actually changed to the next
/// recommender, which then recomputes only the changed rows. Both spans
/// borrow from the previous Version, which the publisher keeps alive for
/// the duration of construction.
struct NormCarryover {
  /// Per-relation norms of the previous recommender (its row_norms()).
  const std::vector<std::vector<float>>* prev_norms = nullptr;
  /// Per-relation ascending-sorted row indices whose embeddings changed
  /// since prev_norms was computed. Rows beyond a relation's previous norm
  /// count are always recomputed (they are new), so append-only growth
  /// needs no dirty entries. A null pointer means "no rows changed".
  const std::vector<std::vector<uint32_t>>* dirty_rows = nullptr;
  /// Per-relation ANN indexes of the previous recommender (its
  /// ann_indexes()). With ANN enabled, the new recommender reuses an entry
  /// outright when its relation has no dirty rows and no appended rows,
  /// patches it copy-on-write when the dirty fraction is small (see
  /// AnnBuildOptions::max_patch_fraction), and rebuilds otherwise — so a
  /// streaming publish costs O(touched) index work, not O(rows).
  const std::vector<std::shared_ptr<const AnnIndex>>* prev_ann = nullptr;
};

/// Brute-force dot-product top-K over a frozen EmbeddingStore: for each
/// query, scans the relation's table once, keeping the best k in a bounded
/// min-heap (O(rows * dim + rows * log k), no full sort, no per-candidate
/// allocation). Query batches fan out across a thread pool. Stateless apart
/// from precomputed norms, so one instance serves any number of threads.
///
/// Quantized stores (fp16/int8) are scanned in place by the
/// dequant-and-score kernels; queries, cosine norms, and the scattered
/// type-filtered path all go through the same dequantization the kernels
/// apply, so scores are consistent however a row is reached.
///
/// With TopKOptions::ann (or HYBRIDGNN_ANN=on) the scan is replaced by
/// sublinear candidate generation: an HNSW search over-fetches a candidate
/// pool which is re-ranked through the same exact kernels and the same
/// filter/heap logic — ANN narrows the candidate set, it never changes
/// scoring semantics. Queries the index cannot serve (unindexed relation,
/// pool under-filled after filtering) route back to the exact scan.
///
/// Ordering is deterministic: descending score, ties broken by ascending
/// node id — the same rule the offline evaluator uses.
class TopKRecommender {
 public:
  /// `graph` (optional) enables candidate typing and training-neighbor
  /// exclusion; it must outlive the recommender, as must `store`.
  /// `extra_filter` (optional) adds post-checkpoint exclusions (streamed
  /// delta edges) on top of the graph filter; same lifetime contract.
  /// `carryover` (optional, cosine mode only) reuses the previous
  /// recommender's row norms for rows it declares untouched; it only needs
  /// to live through the constructor.
  TopKRecommender(const EmbeddingStore* store,
                  const MultiplexHeteroGraph* graph, TopKOptions options,
                  const DeltaEdgeFilter* extra_filter = nullptr,
                  const NormCarryover* carryover = nullptr);

  /// Answers one query.
  StatusOr<std::vector<Recommendation>> Recommend(const TopKQuery& q) const;

  /// Answers a batch, one result slot per query, parallel across
  /// `options.num_threads` (or `pool` when given — the RecommendService
  /// path, which reuses one pool across micro-batches).
  std::vector<StatusOr<std::vector<Recommendation>>> RecommendBatch(
      std::span<const TopKQuery> queries, ThreadPool* pool = nullptr) const;

  const EmbeddingStore& store() const { return *store_; }

  /// Per-relation, per-row candidate L2 norms (empty unless cosine mode).
  /// Feed these back through NormCarryover when rebuilding against a
  /// republished store.
  const std::vector<std::vector<float>>& row_norms() const {
    return row_norms_;
  }

  /// Per-relation ANN indexes (empty vector unless ANN resolved on at
  /// construction; a null entry means that relation fell below ann_min_rows
  /// and routes to the exact scan). Feed these back through
  /// NormCarryover::prev_ann when rebuilding against a republished store.
  const std::vector<std::shared_ptr<const AnnIndex>>& ann_indexes() const {
    return ann_;
  }

  /// True when ANN candidate generation resolved on at construction
  /// (TopKOptions::ann as overridden by HYBRIDGNN_ANN).
  bool ann_enabled() const { return ann_enabled_; }

 private:
  /// Builds / patches / reuses the per-relation ANN indexes (constructor
  /// tail, only when ANN resolved on).
  void BuildAnnIndexes(const NormCarryover* carryover);

  const EmbeddingStore* store_;
  const MultiplexHeteroGraph* graph_;
  TopKOptions options_;
  const DeltaEdgeFilter* extra_filter_;
  /// Per-relation, per-row L2 norms; only filled in cosine mode.
  std::vector<std::vector<float>> row_norms_;
  bool ann_enabled_ = false;
  std::vector<std::shared_ptr<const AnnIndex>> ann_;
};

/// Indirection for serving tiers whose recommender is swapped at runtime
/// (the streaming path): AcquireRecommender() returns the current
/// recommender together with an opaque pin that keeps it (and the tables it
/// scores against) alive until the caller drops the pin. A static
/// deployment returns the same recommender with an empty pin.
/// Implementations must make AcquireRecommender() safe from any thread.
class RecommenderSource {
 public:
  virtual ~RecommenderSource() = default;

  struct Pinned {
    /// Lifetime anchor for `recommender`; may be null for static sources.
    std::shared_ptr<const void> pin;
    const TopKRecommender* recommender = nullptr;
    /// Monotonic identity of the pinned snapshot (a publish sequence for
    /// live sources, 0 for static ones). Two acquires with equal versions
    /// from one source see identical tables and filters — the serving
    /// tier's cache-invalidation key.
    uint64_t version = 0;
  };

  virtual Pinned AcquireRecommender() const = 0;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_TOPK_H_
