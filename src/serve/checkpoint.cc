#include "serve/checkpoint.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <new>
#include <utility>
#include <vector>

namespace hybridgnn {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a so the payload checksum can be streamed over
/// meta + pads + tables without concatenating them.
uint64_t FnvMix(uint64_t h, const void* data, size_t length) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < length; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

size_t Align64(size_t offset) { return (offset + 63) & ~size_t{63}; }

template <typename T>
void AppendScalar(std::string& buf, T value) {
  buf.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendString(std::string& buf, const std::string& s) {
  AppendScalar<uint32_t>(buf, static_cast<uint32_t>(s.size()));
  buf.append(s);
}

/// Bounds-checked cursor over the metadata blob.
class MetaReader {
 public:
  MetaReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!Read(&len) || pos_ + len > size_) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool ReadNodeIds(size_t count, std::vector<NodeId>* out) {
    static_assert(sizeof(NodeId) == sizeof(uint32_t));
    // Divide instead of multiplying: count arrives straight from the file,
    // and count * 4 can wrap size_t on an adversarial header.
    if (count > (size_ - pos_) / sizeof(uint32_t)) return false;
    out->resize(count);
    std::memcpy(out->data(), data_ + pos_, count * sizeof(uint32_t));
    pos_ += count * sizeof(uint32_t);
    return true;
  }

  bool ReadFloats(size_t count, std::vector<float>* out) {
    if (count > (size_ - pos_) / sizeof(float)) return false;
    out->resize(count);
    std::memcpy(out->data(), data_ + pos_, count * sizeof(float));
    pos_ += count * sizeof(float);
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

struct ParsedRelation {
  std::string name;
  std::vector<NodeId> row_to_node;
  std::vector<float> scales;  // v2 int8 only
  std::vector<float> zeros;   // v2 int8 only
  size_t table_offset = 0;    // absolute file offset of the element table
};

struct ParsedCheckpoint {
  std::string model_name;
  uint64_t num_nodes = 0;
  uint64_t dim = 0;
  StoreDType dtype = StoreDType::kF32;
  std::vector<ParsedRelation> relations;
};

/// Validates header + metadata + checksums over the full file image and
/// fills `out` with the parsed structure (table offsets included). Shared by
/// both load modes, so every corruption class is caught identically whether
/// the bytes came from read() or mmap().
Status ParseCheckpoint(const uint8_t* data, size_t size,
                       ParsedCheckpoint* out) {
  if (size < kCheckpointHeaderBytes) {
    return Status::IoError("checkpoint truncated: " + std::to_string(size) +
                           " bytes is smaller than the 64-byte header");
  }
  if (std::memcmp(data, kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return Status::InvalidArgument("bad magic: not a .hgc checkpoint");
  }
  uint16_t endian_tag = 0;
  std::memcpy(&endian_tag, data + 4, sizeof(endian_tag));
  if (endian_tag != kCheckpointEndianTag) {
    if (endian_tag == 0xFFFE) {
      return Status::FailedPrecondition(
          "checkpoint written on a host with opposite endianness");
    }
    return Status::InvalidArgument("corrupt endian tag");
  }
  uint16_t version = 0;
  std::memcpy(&version, data + 6, sizeof(version));
  if (version != kCheckpointVersion &&
      version != kCheckpointVersionQuantized) {
    return Status::FailedPrecondition(
        "checkpoint version skew: file has v" + std::to_string(version) +
        ", reader understands v" + std::to_string(kCheckpointVersion) +
        " (fp32) and v" + std::to_string(kCheckpointVersionQuantized) +
        " (quantized)");
  }
  uint64_t num_relations = 0, num_nodes = 0, dim = 0, meta_bytes = 0,
           payload_bytes = 0, payload_checksum = 0, header_checksum = 0;
  std::memcpy(&num_relations, data + 8, 8);
  std::memcpy(&num_nodes, data + 16, 8);
  std::memcpy(&dim, data + 24, 8);
  std::memcpy(&meta_bytes, data + 32, 8);
  std::memcpy(&payload_bytes, data + 40, 8);
  std::memcpy(&payload_checksum, data + 48, 8);
  std::memcpy(&header_checksum, data + 56, 8);
  if (header_checksum != Fnv1a64(data, 56)) {
    return Status::IoError("header checksum mismatch");
  }
  if (size != kCheckpointHeaderBytes + payload_bytes) {
    return Status::IoError(
        "checkpoint truncated: header declares " +
        std::to_string(kCheckpointHeaderBytes + payload_bytes) +
        " bytes, file has " + std::to_string(size));
  }
  if (meta_bytes > payload_bytes) {
    return Status::IoError("corrupt metadata size");
  }
  if (payload_checksum !=
      Fnv1a64(data + kCheckpointHeaderBytes, payload_bytes)) {
    return Status::IoError("payload checksum mismatch");
  }

  // Bounds dim so the per-table byte math below cannot overflow size_t on
  // adversarial headers.
  if (dim == 0 || dim > (1u << 20)) {
    return Status::InvalidArgument("corrupt header: implausible dim " +
                                   std::to_string(dim));
  }
  // The writer refuses empty stores, so a zero here is corruption; catching
  // it in the shared parser keeps the copy and mmap paths consistent.
  if (num_relations == 0) {
    return Status::InvalidArgument("corrupt header: zero relations");
  }
  // NodeId is 32 bits and the store builds an O(num_nodes) index per
  // relation, so a wider node-id space cannot be honest and must not reach
  // the index allocation.
  if (num_nodes == 0 || num_nodes > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("corrupt header: implausible num_nodes " +
                                   std::to_string(num_nodes));
  }

  MetaReader meta(data + kCheckpointHeaderBytes, meta_bytes);
  out->dtype = StoreDType::kF32;
  if (version == kCheckpointVersionQuantized) {
    uint8_t dtype_byte = 0;
    if (!meta.Read(&dtype_byte)) {
      return Status::InvalidArgument("corrupt metadata: missing dtype");
    }
    // A v2 file carrying fp32 is something the writer never produces, so
    // treat it (and any unknown code) as corruption.
    if (dtype_byte != static_cast<uint8_t>(StoreDType::kF16) &&
        dtype_byte != static_cast<uint8_t>(StoreDType::kI8)) {
      return Status::InvalidArgument(
          "corrupt metadata: bad dtype code " + std::to_string(dtype_byte));
    }
    out->dtype = static_cast<StoreDType>(dtype_byte);
  }
  if (!meta.ReadString(&out->model_name)) {
    return Status::InvalidArgument("corrupt metadata: model name");
  }
  out->num_nodes = num_nodes;
  out->dim = dim;
  // Every relation record costs at least 4 (name length) + 8 (num_rows)
  // metadata bytes, so anything larger than meta_bytes / 12 cannot be
  // honest — and must not reach the resize below, where a forged 2^60
  // would abort on allocation instead of returning a Status.
  if (num_relations > meta_bytes / 12) {
    return Status::InvalidArgument(
        "corrupt header: num_relations inconsistent with metadata size");
  }
  out->relations.resize(num_relations);
  const size_t elem_bytes = StoreDTypeBytes(out->dtype);
  size_t offset = Align64(kCheckpointHeaderBytes + meta_bytes);
  for (auto& rel : out->relations) {
    uint64_t num_rows = 0;
    if (!meta.ReadString(&rel.name) || !meta.Read(&num_rows) ||
        !meta.ReadNodeIds(num_rows, &rel.row_to_node)) {
      return Status::InvalidArgument("corrupt metadata: relation record");
    }
    if (out->dtype == StoreDType::kI8 &&
        (!meta.ReadFloats(num_rows, &rel.scales) ||
         !meta.ReadFloats(num_rows, &rel.zeros))) {
      return Status::InvalidArgument("corrupt metadata: int8 affine record");
    }
    rel.table_offset = offset;
    if (num_rows > size / (dim * elem_bytes)) {
      return Status::IoError("checkpoint truncated: table out of bounds");
    }
    const size_t table_bytes = num_rows * dim * elem_bytes;
    if (rel.table_offset + table_bytes > size) {
      return Status::IoError("checkpoint truncated: table out of bounds");
    }
    offset = Align64(offset + table_bytes);
  }
  return Status::OK();
}

StatusOr<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const std::streamoff end = in.tellg();
  if (end < 0) return Status::IoError("cannot stat " + path);
  std::vector<uint8_t> bytes(static_cast<size_t>(end));
  in.seekg(0);
  if (!bytes.empty() &&
      !in.read(reinterpret_cast<char*>(bytes.data()), end)) {
    return Status::IoError("short read on " + path);
  }
  return bytes;
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t length) {
  return FnvMix(kFnvOffset, data, length);
}

StatusOr<StoreDType> ParseStoreDType(const std::string& name) {
  if (name == "fp32") return StoreDType::kF32;
  if (name == "fp16") return StoreDType::kF16;
  if (name == "int8") return StoreDType::kI8;
  return Status::InvalidArgument("unknown store dtype '" + name +
                                 "' (want fp32, fp16, or int8)");
}

Status WriteCheckpoint(const EmbeddingStore& store, const std::string& path) {
  if (store.num_relations() == 0 || store.dim() == 0) {
    return Status::InvalidArgument("refusing to write an empty store");
  }
  const bool quantized = store.dtype() != StoreDType::kF32;
  // Raw bytes of relation `r`'s element table, whatever the dtype.
  auto table_bytes_of = [&store](RelationId r) -> std::span<const uint8_t> {
    if (store.dtype() == StoreDType::kF32) {
      const auto t = store.Table(r);
      return {reinterpret_cast<const uint8_t*>(t.data()), t.size_bytes()};
    }
    return store.RawTable(r);
  };

  // Metadata blob. The fp32 blob is byte-identical to the v1 writer's; the
  // quantized blob leads with the dtype code and carries the int8 affine
  // rows inline (checksummed with everything else).
  std::string meta;
  if (quantized) {
    AppendScalar<uint8_t>(meta, static_cast<uint8_t>(store.dtype()));
  }
  AppendString(meta, store.model_name());
  for (RelationId r = 0; r < store.num_relations(); ++r) {
    AppendString(meta, store.relation_name(r));
    AppendScalar<uint64_t>(meta, store.NumRows(r));
    const auto rows = store.RowNodes(r);
    meta.append(reinterpret_cast<const char*>(rows.data()),
                rows.size() * sizeof(NodeId));
    if (store.dtype() == StoreDType::kI8) {
      const auto scales = store.RowScales(r);
      const auto zeros = store.RowZeros(r);
      meta.append(reinterpret_cast<const char*>(scales.data()),
                  scales.size_bytes());
      meta.append(reinterpret_cast<const char*>(zeros.data()),
                  zeros.size_bytes());
    }
  }

  // Payload checksum and total size, streamed over meta + pads + tables.
  static constexpr char kZeros[64] = {};
  uint64_t checksum = kFnvOffset;
  checksum = FnvMix(checksum, meta.data(), meta.size());
  size_t offset = kCheckpointHeaderBytes + meta.size();
  std::vector<size_t> pads;  // pad before each table, in relation order
  for (RelationId r = 0; r < store.num_relations(); ++r) {
    const size_t pad = Align64(offset) - offset;
    checksum = FnvMix(checksum, kZeros, pad);
    const auto table = table_bytes_of(r);
    checksum = FnvMix(checksum, table.data(), table.size());
    pads.push_back(pad);
    offset = Align64(offset) + table.size();
  }
  const uint64_t payload_bytes = offset - kCheckpointHeaderBytes;

  // Header.
  uint8_t header[kCheckpointHeaderBytes] = {};
  std::memcpy(header, kCheckpointMagic, sizeof(kCheckpointMagic));
  const uint16_t endian_tag = kCheckpointEndianTag;
  const uint16_t version =
      quantized ? kCheckpointVersionQuantized : kCheckpointVersion;
  std::memcpy(header + 4, &endian_tag, 2);
  std::memcpy(header + 6, &version, 2);
  const uint64_t num_relations = store.num_relations();
  const uint64_t num_nodes = store.num_nodes();
  const uint64_t dim = store.dim();
  const uint64_t meta_bytes = meta.size();
  std::memcpy(header + 8, &num_relations, 8);
  std::memcpy(header + 16, &num_nodes, 8);
  std::memcpy(header + 24, &dim, 8);
  std::memcpy(header + 32, &meta_bytes, 8);
  std::memcpy(header + 40, &payload_bytes, 8);
  std::memcpy(header + 48, &checksum, 8);
  const uint64_t header_checksum = Fnv1a64(header, 56);
  std::memcpy(header + 56, &header_checksum, 8);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write " + path);
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(meta.data(), static_cast<std::streamsize>(meta.size()));
  for (RelationId r = 0; r < store.num_relations(); ++r) {
    out.write(kZeros, static_cast<std::streamsize>(pads[r]));
    const auto table = table_bytes_of(r);
    out.write(reinterpret_cast<const char*>(table.data()),
              static_cast<std::streamsize>(table.size()));
  }
  out.flush();
  if (!out) return Status::IoError("write failed on " + path);
  return Status::OK();
}

StatusOr<EmbeddingStore> BuildStore(const EmbeddingModel& model,
                                    const MultiplexHeteroGraph& graph,
                                    size_t num_threads) {
  if (graph.num_nodes() == 0 || graph.num_relations() == 0) {
    return Status::InvalidArgument(
        "cannot build a store from an empty graph");
  }
  std::vector<EmbeddingStore::TableInit> tables;
  tables.reserve(graph.num_relations());
  std::vector<NodeId> identity(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) identity[v] = v;
  for (RelationId r = 0; r < graph.num_relations(); ++r) {
    EmbeddingStore::TableInit t;
    t.name = graph.relation_name(r);
    t.row_to_node = identity;
    t.data = model.ExportRelationTable(graph.num_nodes(), r, num_threads);
    tables.push_back(std::move(t));
  }
  return EmbeddingStore::FromTables(model.name(), graph.num_nodes(),
                                    std::move(tables));
}

Status SaveCheckpoint(const EmbeddingModel& model,
                      const MultiplexHeteroGraph& graph,
                      const std::string& path, size_t num_threads) {
  HYBRIDGNN_ASSIGN_OR_RETURN(EmbeddingStore store,
                             BuildStore(model, graph, num_threads));
  return WriteCheckpoint(store, path);
}

StatusOr<EmbeddingStore> LoadCheckpoint(const std::string& path,
                                        LoadMode mode) try {
  if (mode == LoadMode::kCopy) {
    HYBRIDGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                               ReadWholeFile(path));
    ParsedCheckpoint parsed;
    HYBRIDGNN_RETURN_IF_ERROR(
        ParseCheckpoint(bytes.data(), bytes.size(), &parsed));
    if (parsed.dtype == StoreDType::kF32) {
      std::vector<EmbeddingStore::TableInit> tables;
      tables.reserve(parsed.relations.size());
      for (auto& rel : parsed.relations) {
        EmbeddingStore::TableInit t;
        t.name = std::move(rel.name);
        const size_t num_rows = rel.row_to_node.size();
        t.row_to_node = std::move(rel.row_to_node);
        Tensor data(num_rows, parsed.dim);
        std::memcpy(data.data(), bytes.data() + rel.table_offset,
                    num_rows * parsed.dim * sizeof(float));
        t.data = std::move(data);
        tables.push_back(std::move(t));
      }
      return EmbeddingStore::FromTables(std::move(parsed.model_name),
                                        parsed.num_nodes, std::move(tables));
    }
    // Quantized: copy each raw payload into owned bytes; the parser already
    // pulled the int8 affine rows out of the metadata blob.
    EmbeddingStore store;
    store.model_name_ = std::move(parsed.model_name);
    store.num_nodes_ = parsed.num_nodes;
    store.dim_ = parsed.dim;
    store.dtype_ = parsed.dtype;
    const size_t elem_bytes = StoreDTypeBytes(parsed.dtype);
    store.tables_.reserve(parsed.relations.size());
    for (auto& rel : parsed.relations) {
      EmbeddingStore::RelationTable rt;
      rt.name = std::move(rel.name);
      rt.row_to_node = std::move(rel.row_to_node);
      const size_t rows = rt.row_to_node.size();
      const size_t table_bytes = rows * parsed.dim * elem_bytes;
      std::vector<uint8_t> payload(table_bytes);
      std::memcpy(payload.data(), bytes.data() + rel.table_offset,
                  table_bytes);
      store.owned_bytes_.push_back(std::move(payload));
      rt.qdata = std::span<const uint8_t>(store.owned_bytes_.back());
      if (parsed.dtype == StoreDType::kI8) {
        std::vector<float> affine(std::move(rel.scales));
        affine.insert(affine.end(), rel.zeros.begin(), rel.zeros.end());
        store.owned_.push_back(std::move(affine));
        const float* a = store.owned_.back().data();
        rt.scales = std::span<const float>(a, rows);
        rt.zeros = std::span<const float>(a + rows, rows);
      }
      HYBRIDGNN_RETURN_IF_ERROR(
          EmbeddingStore::IndexTable(rt, parsed.num_nodes));
      store.tables_.push_back(std::move(rt));
    }
    return store;
  }

  // LoadMode::kMmap — zero-copy.
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* base =
      size > 0 ? mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0) : nullptr;
  close(fd);  // the mapping keeps its own reference to the file
  if (size > 0 && base == MAP_FAILED) {
    return Status::IoError("mmap failed on " + path);
  }
  auto region = std::make_unique<MmapRegion>(base, size);
  const auto* data = static_cast<const uint8_t*>(region->base);
  ParsedCheckpoint parsed;
  HYBRIDGNN_RETURN_IF_ERROR(ParseCheckpoint(data, size, &parsed));

  EmbeddingStore store;
  store.model_name_ = std::move(parsed.model_name);
  store.num_nodes_ = parsed.num_nodes;
  store.dim_ = parsed.dim;
  store.dtype_ = parsed.dtype;
  store.tables_.reserve(parsed.relations.size());
  for (auto& rel : parsed.relations) {
    EmbeddingStore::RelationTable rt;
    rt.name = std::move(rel.name);
    rt.row_to_node = std::move(rel.row_to_node);
    const size_t rows = rt.row_to_node.size();
    if (parsed.dtype == StoreDType::kF32) {
      rt.data = std::span<const float>(
          reinterpret_cast<const float*>(data + rel.table_offset),
          rows * parsed.dim);
    } else {
      // Quantized payloads are scanned straight off the map; the int8
      // affine rows live at unaligned metadata offsets, so those are the
      // one thing the zero-copy path still owns.
      rt.qdata = std::span<const uint8_t>(
          data + rel.table_offset,
          rows * parsed.dim * StoreDTypeBytes(parsed.dtype));
      if (parsed.dtype == StoreDType::kI8) {
        std::vector<float> affine(std::move(rel.scales));
        affine.insert(affine.end(), rel.zeros.begin(), rel.zeros.end());
        store.owned_.push_back(std::move(affine));
        const float* a = store.owned_.back().data();
        rt.scales = std::span<const float>(a, rows);
        rt.zeros = std::span<const float>(a + rows, rows);
      }
    }
    HYBRIDGNN_RETURN_IF_ERROR(
        EmbeddingStore::IndexTable(rt, parsed.num_nodes));
    store.tables_.push_back(std::move(rt));
  }
  store.mapping_ = std::move(region);
  return store;
} catch (const std::bad_alloc&) {
  // A header can pass every structural check and still describe a store
  // (say, 2^32 sparsely-covered nodes) whose index exceeds memory; that is
  // an I/O-level rejection, not a crash.
  return Status::IoError("checkpoint load exhausted memory on " + path);
}

}  // namespace hybridgnn
