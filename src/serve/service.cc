#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace hybridgnn {

RecommendService::RecommendService(const TopKRecommender* recommender,
                                   ServiceOptions options)
    : recommender_(recommender), options_(options) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  // Always own a pool (even single-threaded) so batch scoring never falls
  // back to the recommender's transient-pool path mid-request.
  pool_ = std::make_unique<ThreadPool>(ResolveNumThreads(options_.num_threads));
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

RecommendService::RecommendService(const RecommenderSource* source,
                                   ServiceOptions options)
    : recommender_(nullptr), source_(source), options_(options) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  pool_ = std::make_unique<ThreadPool>(ResolveNumThreads(options_.num_threads));
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

RecommendService::~RecommendService() { Shutdown(); }

std::future<RecommendResponse> RecommendService::Submit(
    const TopKQuery& query) {
  return Submit(query, options_.default_deadline_ms);
}

std::future<RecommendResponse> RecommendService::Submit(
    const TopKQuery& query, double deadline_ms) {
  Pending p;
  p.query = query;
  p.enqueued = std::chrono::steady_clock::now();
  if (deadline_ms > 0.0) {
    p.deadline =
        p.enqueued +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  }
  std::future<RecommendResponse> future = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      RecommendResponse resp;
      resp.status = Status::FailedPrecondition("service is shut down");
      p.promise.set_value(std::move(resp));
      return future;
    }
    // Load shed: with the queue already at the cap, one more request would
    // only queue behind work we cannot keep up with. Failing fast here —
    // before the dispatcher ever sees the request — is what keeps p99
    // bounded under overload. Sheds stay out of the latency histogram by
    // design (see ServeMetrics).
    if (options_.max_queue_depth > 0 &&
        pending_.size() >= options_.max_queue_depth) {
      metrics_.shed.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& g_shed =
          obs::GlobalRegistry().GetCounter("serve/shed");
      g_shed.Add();
      RecommendResponse resp;
      resp.status = Status::ResourceExhausted(
          "request queue full (" + std::to_string(options_.max_queue_depth) +
          " pending)");
      p.promise.set_value(std::move(resp));
      return future;
    }
    pending_.push_back(std::move(p));
  }
  work_available_.notify_one();
  return future;
}

size_t RecommendService::CacheKeyHash::operator()(const CacheKey& key) const {
  // FNV-style mix of the key fields; the shifts keep low-entropy small
  // integers (rel, k) from colliding systematically.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(key.node);
  mix(static_cast<uint64_t>(key.rel) | (static_cast<uint64_t>(key.k) << 16));
  mix(static_cast<uint64_t>(key.candidate_type) |
      (static_cast<uint64_t>(key.exclude_train_neighbors) << 16));
  mix(key.version);
  return static_cast<size_t>(h);
}

const std::vector<Recommendation>* RecommendService::CacheLookup(
    const CacheKey& key) {
  if (options_.result_cache_capacity == 0) return nullptr;
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) return nullptr;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);  // touch
  return &it->second->items;
}

void RecommendService::CacheInsert(CacheKey key,
                                   std::vector<Recommendation> items) {
  if (options_.result_cache_capacity == 0) return;
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    it->second->items = std::move(items);
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.push_front(CacheEntry{key, std::move(items)});
  cache_index_[key] = cache_lru_.begin();
  while (cache_lru_.size() > options_.result_cache_capacity) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
  }
}

void RecommendService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  // Exactly one caller performs the join; late callers block here until the
  // dispatcher is reaped, then see joinable() == false and fall through.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

void RecommendService::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || !pending_.empty(); });
    if (pending_.empty()) return;  // shutdown with nothing left to drain

    // Micro-batch accumulation: wait out the window from the *first*
    // request unless the batch fills (or shutdown asks us to flush now).
    if (options_.batch_window_ms > 0.0) {
      const auto deadline =
          pending_.front().enqueued +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  options_.batch_window_ms));
      while (!shutdown_ && pending_.size() < options_.max_batch_size) {
        if (work_available_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }

    const size_t n = std::min(pending_.size(), options_.max_batch_size);
    std::vector<Pending> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void RecommendService::ProcessBatch(std::vector<Pending> batch) {
  // Per-service counters plus their process-wide mirrors in the obs
  // registry (references are stable, so only relaxed atomics past init).
  static obs::Counter& g_requests =
      obs::GlobalRegistry().GetCounter("serve/requests");
  static obs::Counter& g_errors =
      obs::GlobalRegistry().GetCounter("serve/errors");
  static obs::Counter& g_batches =
      obs::GlobalRegistry().GetCounter("serve/batches");
  static obs::Counter& g_items =
      obs::GlobalRegistry().GetCounter("serve/items_returned");
  static obs::Counter& g_deadline =
      obs::GlobalRegistry().GetCounter("serve/deadline_exceeded");
  static obs::Counter& g_cache_hits =
      obs::GlobalRegistry().GetCounter("serve/cache_hits");
  static obs::Counter& g_cache_misses =
      obs::GlobalRegistry().GetCounter("serve/cache_misses");
  static obs::LatencyHistogram& g_latency =
      obs::Stage("serve/request_latency");
  static obs::LatencyHistogram& g_queue_wait = obs::Stage("serve/queue_wait");
  static obs::LatencyHistogram& g_batch_service =
      obs::Stage("serve/batch_service");

  const auto start = std::chrono::steady_clock::now();
  metrics_.batches.fetch_add(1, std::memory_order_relaxed);
  g_batches.Add();
  // Queue wait is per request — each spent its own time in the queue. The
  // old code's single stamp at batch end hid exactly this component.
  for (const Pending& p : batch) {
    const double wait_ms =
        std::chrono::duration<double, std::milli>(start - p.enqueued).count();
    metrics_.queue_wait.Record(wait_ms);
    g_queue_wait.Record(wait_ms);
  }

  // Live mode pins one store version per micro-batch: the pin keeps the
  // version's tables alive through the scoring pass even if the ingest
  // thread publishes (and thereby retires) newer versions meanwhile. The
  // version number doubles as the cache epoch: a publish changes it, so
  // stale cached results simply stop being reachable.
  RecommenderSource::Pinned pinned;
  const TopKRecommender* recommender = recommender_;
  uint64_t store_version = 0;
  if (source_ != nullptr) {
    pinned = source_->AcquireRecommender();
    recommender = pinned.recommender;
    store_version = pinned.version;
  }

  // Resolves one request now (deadline misses and cache hits never reach
  // the scoring pool).
  auto resolve = [&](Pending& p, RecommendResponse resp) {
    resp.latency_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - p.enqueued)
                          .count();
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    metrics_.items_returned.fetch_add(resp.items.size(),
                                      std::memory_order_relaxed);
    g_requests.Add();
    g_items.Add(resp.items.size());
    if (!resp.status.ok()) {
      metrics_.errors.fetch_add(1, std::memory_order_relaxed);
      g_errors.Add();
    }
    metrics_.latency.Record(resp.latency_ms);
    g_latency.Record(resp.latency_ms);
    p.promise.set_value(std::move(resp));
  };

  // Admission pass: expire dead requests, serve warm cache hits, and keep
  // only what actually needs scoring.
  const bool cache_on = options_.result_cache_capacity > 0;
  std::vector<size_t> to_score;
  std::vector<TopKQuery> queries;
  to_score.reserve(batch.size());
  queries.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    if (start >= p.deadline) {
      RecommendResponse resp;
      resp.status = Status::DeadlineExceeded(
          "deadline expired before scoring started");
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      g_deadline.Add();
      resolve(p, std::move(resp));
      continue;
    }
    const CacheKey key{p.query.node,           p.query.rel,
                       p.query.k,              p.query.candidate_type,
                       p.query.exclude_train_neighbors, store_version};
    if (const std::vector<Recommendation>* hit = CacheLookup(key)) {
      RecommendResponse resp;
      resp.items = *hit;
      metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      g_cache_hits.Add();
      resolve(p, std::move(resp));
      continue;
    }
    if (cache_on) {
      metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);
      g_cache_misses.Add();
    }
    to_score.push_back(i);
    queries.push_back(p.query);
  }

  if (!queries.empty()) {
    std::vector<StatusOr<std::vector<Recommendation>>> results =
        recommender->RecommendBatch(queries, pool_.get());
    for (size_t j = 0; j < to_score.size(); ++j) {
      Pending& p = batch[to_score[j]];
      RecommendResponse resp;
      if (results[j].ok()) {
        resp.items = std::move(results[j]).value();
        if (cache_on) {
          CacheInsert({p.query.node, p.query.rel, p.query.k,
                       p.query.candidate_type, p.query.exclude_train_neighbors,
                       store_version},
                      resp.items);
        }
      } else {
        resp.status = results[j].status();
      }
      resolve(p, std::move(resp));
    }
  }

  const double service_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  metrics_.batch_service.Record(service_ms);
  g_batch_service.Record(service_ms);
}

}  // namespace hybridgnn
