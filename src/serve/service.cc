#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace hybridgnn {

RecommendService::RecommendService(const TopKRecommender* recommender,
                                   ServiceOptions options)
    : recommender_(recommender), options_(options) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  // Always own a pool (even single-threaded) so batch scoring never falls
  // back to the recommender's transient-pool path mid-request.
  pool_ = std::make_unique<ThreadPool>(ResolveNumThreads(options_.num_threads));
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

RecommendService::RecommendService(const RecommenderSource* source,
                                   ServiceOptions options)
    : recommender_(nullptr), source_(source), options_(options) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  pool_ = std::make_unique<ThreadPool>(ResolveNumThreads(options_.num_threads));
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

RecommendService::~RecommendService() { Shutdown(); }

std::future<RecommendResponse> RecommendService::Submit(
    const TopKQuery& query) {
  Pending p;
  p.query = query;
  p.enqueued = std::chrono::steady_clock::now();
  std::future<RecommendResponse> future = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      RecommendResponse resp;
      resp.status = Status::FailedPrecondition("service is shut down");
      p.promise.set_value(std::move(resp));
      return future;
    }
    pending_.push_back(std::move(p));
  }
  work_available_.notify_one();
  return future;
}

void RecommendService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && !dispatcher_.joinable()) return;
    shutdown_ = true;
  }
  work_available_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void RecommendService::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || !pending_.empty(); });
    if (pending_.empty()) return;  // shutdown with nothing left to drain

    // Micro-batch accumulation: wait out the window from the *first*
    // request unless the batch fills (or shutdown asks us to flush now).
    if (options_.batch_window_ms > 0.0) {
      const auto deadline =
          pending_.front().enqueued +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  options_.batch_window_ms));
      while (!shutdown_ && pending_.size() < options_.max_batch_size) {
        if (work_available_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }

    const size_t n = std::min(pending_.size(), options_.max_batch_size);
    std::vector<Pending> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    lock.unlock();
    ProcessBatch(std::move(batch));
    lock.lock();
  }
}

void RecommendService::ProcessBatch(std::vector<Pending> batch) {
  std::vector<TopKQuery> queries;
  queries.reserve(batch.size());
  for (const Pending& p : batch) queries.push_back(p.query);
  // Live mode pins one store version per micro-batch: the pin keeps the
  // version's tables alive through the scoring pass even if the ingest
  // thread publishes (and thereby retires) newer versions meanwhile.
  RecommenderSource::Pinned pinned;
  const TopKRecommender* recommender = recommender_;
  if (source_ != nullptr) {
    pinned = source_->AcquireRecommender();
    recommender = pinned.recommender;
  }
  std::vector<StatusOr<std::vector<Recommendation>>> results =
      recommender->RecommendBatch(queries, pool_.get());

  // Per-service counters plus their process-wide mirrors in the obs
  // registry (references are stable, so only relaxed atomics past init).
  static obs::Counter& g_requests =
      obs::GlobalRegistry().GetCounter("serve/requests");
  static obs::Counter& g_errors =
      obs::GlobalRegistry().GetCounter("serve/errors");
  static obs::Counter& g_batches =
      obs::GlobalRegistry().GetCounter("serve/batches");
  static obs::Counter& g_items =
      obs::GlobalRegistry().GetCounter("serve/items_returned");
  static obs::LatencyHistogram& g_latency =
      obs::Stage("serve/request_latency");

  const auto done = std::chrono::steady_clock::now();
  metrics_.batches.fetch_add(1, std::memory_order_relaxed);
  g_batches.Add();
  for (size_t i = 0; i < batch.size(); ++i) {
    RecommendResponse resp;
    resp.latency_ms =
        std::chrono::duration<double, std::milli>(done - batch[i].enqueued)
            .count();
    if (results[i].ok()) {
      resp.items = std::move(results[i]).value();
    } else {
      resp.status = results[i].status();
      metrics_.errors.fetch_add(1, std::memory_order_relaxed);
      g_errors.Add();
    }
    metrics_.requests.fetch_add(1, std::memory_order_relaxed);
    metrics_.items_returned.fetch_add(resp.items.size(),
                                      std::memory_order_relaxed);
    g_requests.Add();
    g_items.Add(resp.items.size());
    metrics_.latency.Record(resp.latency_ms);
    g_latency.Record(resp.latency_ms);
    batch[i].promise.set_value(std::move(resp));
  }
}

}  // namespace hybridgnn
