#ifndef HYBRIDGNN_SERVE_SERVICE_H_
#define HYBRIDGNN_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "serve/metrics.h"
#include "serve/topk.h"

namespace hybridgnn {

struct ServiceOptions {
  /// Scoring workers shared by all micro-batches. 0 defers to
  /// HYBRIDGNN_THREADS; 1 scores on the dispatcher thread.
  size_t num_threads = 0;
  /// A micro-batch is flushed as soon as it holds this many requests...
  size_t max_batch_size = 64;
  /// ...or once this much time has passed since its first request arrived,
  /// whichever comes first. 0 flushes immediately (no batching delay).
  double batch_window_ms = 1.0;
};

/// One answered request: the recommendations (empty on error) plus the
/// end-to-end latency from Submit to completion.
struct RecommendResponse {
  Status status;
  std::vector<Recommendation> items;
  double latency_ms = 0.0;
};

/// Online serving front end over a TopKRecommender. Clients Submit()
/// queries from any thread and get a future; a dispatcher thread gathers
/// requests into micro-batches under (max_batch_size, batch_window_ms) and
/// fans each batch out across the scoring pool — the classic
/// throughput-for-tail-latency trade of embedding retrieval tiers. Counters
/// and a latency histogram (p50/p99) are kept in ServeMetrics.
///
/// Shutdown() (also run by the destructor) stops accepting new work,
/// drains every pending request, and joins the dispatcher, so no future
/// obtained from Submit() is ever abandoned.
class RecommendService {
 public:
  /// `recommender` must outlive the service.
  RecommendService(const TopKRecommender* recommender,
                   ServiceOptions options);
  /// Live mode: every micro-batch pins the source's current recommender for
  /// the duration of its scoring pass, so one batch sees one consistent
  /// embedding-store version even while an ingest thread keeps publishing
  /// new ones. `source` must outlive the service.
  RecommendService(const RecommenderSource* source, ServiceOptions options);
  ~RecommendService();

  RecommendService(const RecommendService&) = delete;
  RecommendService& operator=(const RecommendService&) = delete;

  /// Enqueues a query; the future resolves when its micro-batch completes.
  /// After Shutdown() the future resolves immediately with
  /// FailedPrecondition.
  std::future<RecommendResponse> Submit(const TopKQuery& query);

  /// Synchronous convenience wrapper: Submit + wait.
  RecommendResponse Call(const TopKQuery& query) {
    return Submit(query).get();
  }

  /// Stops intake, drains pending requests, joins the dispatcher.
  /// Idempotent.
  void Shutdown();

  MetricsSnapshot metrics() const { return metrics_.Snapshot(); }

 private:
  struct Pending {
    TopKQuery query;
    std::promise<RecommendResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void DispatchLoop();
  void ProcessBatch(std::vector<Pending> batch);

  const TopKRecommender* recommender_;      // static mode; null in live mode
  const RecommenderSource* source_ = nullptr;  // live mode; null otherwise
  ServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // scoring workers, owned

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<Pending> pending_;
  bool shutdown_ = false;
  std::thread dispatcher_;

  ServeMetrics metrics_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_SERVICE_H_
