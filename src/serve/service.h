#ifndef HYBRIDGNN_SERVE_SERVICE_H_
#define HYBRIDGNN_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/threadpool.h"
#include "serve/metrics.h"
#include "serve/topk.h"

namespace hybridgnn {

struct ServiceOptions {
  /// Scoring workers shared by all micro-batches. 0 defers to
  /// HYBRIDGNN_THREADS; 1 scores on the dispatcher thread.
  size_t num_threads = 0;
  /// A micro-batch is flushed as soon as it holds this many requests...
  size_t max_batch_size = 64;
  /// ...or once this much time has passed since its first request arrived,
  /// whichever comes first. 0 flushes immediately (no batching delay).
  double batch_window_ms = 1.0;
  /// Load shedding: Submit resolves immediately with ResourceExhausted once
  /// this many requests are already queued, instead of letting the queue
  /// (and every queued request's latency) grow without bound. 0 = never
  /// shed.
  size_t max_queue_depth = 0;
  /// Deadline applied by Submit(query) when the caller does not pass an
  /// explicit one: a request still unscored this many ms after Submit
  /// resolves DeadlineExceeded without being scored. 0 = no deadline.
  double default_deadline_ms = 0.0;
  /// Warm result cache for repeat (hub-user) queries: entries keyed on
  /// (node, rel, k, candidate type, exclusion flag, store version), so
  /// every LiveEmbeddingStore::Publish implicitly invalidates — a new
  /// version never sees stale items. 0 = cache disabled.
  size_t result_cache_capacity = 0;
};

/// One answered request: the recommendations (empty on error) plus the
/// end-to-end latency from Submit to completion.
struct RecommendResponse {
  Status status;
  std::vector<Recommendation> items;
  double latency_ms = 0.0;
};

/// Online serving front end over a TopKRecommender. Clients Submit()
/// queries from any thread and get a future; a dispatcher thread gathers
/// requests into micro-batches under (max_batch_size, batch_window_ms) and
/// fans each batch out across the scoring pool — the classic
/// throughput-for-tail-latency trade of embedding retrieval tiers. Counters
/// and a latency histogram (p50/p99) are kept in ServeMetrics.
///
/// Shutdown() (also run by the destructor) stops accepting new work,
/// drains every pending request, and joins the dispatcher, so no future
/// obtained from Submit() is ever abandoned.
class RecommendService {
 public:
  /// `recommender` must outlive the service.
  RecommendService(const TopKRecommender* recommender,
                   ServiceOptions options);
  /// Live mode: every micro-batch pins the source's current recommender for
  /// the duration of its scoring pass, so one batch sees one consistent
  /// embedding-store version even while an ingest thread keeps publishing
  /// new ones. `source` must outlive the service.
  RecommendService(const RecommenderSource* source, ServiceOptions options);
  ~RecommendService();

  RecommendService(const RecommendService&) = delete;
  RecommendService& operator=(const RecommendService&) = delete;

  /// Enqueues a query; the future resolves when its micro-batch completes.
  /// After Shutdown() the future resolves immediately with
  /// FailedPrecondition; with the queue at max_queue_depth it resolves
  /// immediately with ResourceExhausted (load shed). Applies
  /// options.default_deadline_ms.
  std::future<RecommendResponse> Submit(const TopKQuery& query);

  /// Same, with an explicit per-request deadline: if the request has not
  /// started scoring within `deadline_ms` of Submit, it resolves
  /// DeadlineExceeded without ever being scored — the classic "the caller
  /// already timed out, don't burn the scan" guard. 0 = no deadline
  /// (overrides any default).
  std::future<RecommendResponse> Submit(const TopKQuery& query,
                                        double deadline_ms);

  /// Synchronous convenience wrapper: Submit + wait.
  RecommendResponse Call(const TopKQuery& query) {
    return Submit(query).get();
  }

  /// Stops intake, drains pending requests, joins the dispatcher.
  /// Idempotent.
  void Shutdown();

  MetricsSnapshot metrics() const { return metrics_.Snapshot(); }

 private:
  struct Pending {
    TopKQuery query;
    std::promise<RecommendResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Scoring must start before this instant; max() = no deadline.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  /// Warm result cache: LRU over completed OK responses, keyed on the full
  /// query identity plus the pinned store version. Touched only by the
  /// dispatcher thread (ProcessBatch), so it needs no lock.
  struct CacheKey {
    NodeId node = 0;
    RelationId rel = 0;
    size_t k = 0;
    NodeTypeId candidate_type = 0;
    bool exclude_train_neighbors = false;
    uint64_t version = 0;

    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const;
  };
  struct CacheEntry {
    CacheKey key;
    std::vector<Recommendation> items;
  };

  void DispatchLoop();
  void ProcessBatch(std::vector<Pending> batch);
  /// Cache lookup with LRU touch; null on miss (or cache disabled).
  const std::vector<Recommendation>* CacheLookup(const CacheKey& key);
  void CacheInsert(CacheKey key, std::vector<Recommendation> items);

  const TopKRecommender* recommender_;      // static mode; null in live mode
  const RecommenderSource* source_ = nullptr;  // live mode; null otherwise
  ServiceOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // scoring workers, owned

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<Pending> pending_;
  bool shutdown_ = false;
  std::thread dispatcher_;
  // Serializes the dispatcher join: Shutdown() may be called from several
  // threads at once (and again by the destructor), but only one caller may
  // reach dispatcher_.join() — concurrent joins of one std::thread are UB.
  std::mutex join_mu_;

  // Dispatcher-thread-only LRU (front of cache_lru_ = most recent).
  std::list<CacheEntry> cache_lru_;
  std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHash>
      cache_index_;

  ServeMetrics metrics_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_SERVICE_H_
