#include "serve/store_model.h"

#include <cstring>

namespace hybridgnn {

Tensor StoreBackedModel::Embedding(NodeId v, RelationId r) const {
  Tensor out(1, store_->dim());
  const float* row = store_->Lookup(v, r);
  if (row != nullptr) {
    std::memcpy(out.RowPtr(0), row, store_->dim() * sizeof(float));
  }
  return out;
}

Tensor StoreBackedModel::EmbeddingsFor(
    std::span<const std::pair<NodeId, RelationId>> queries) const {
  Tensor out(queries.size(), store_->dim());
  for (size_t i = 0; i < queries.size(); ++i) {
    const float* row = store_->Lookup(queries[i].first, queries[i].second);
    if (row != nullptr) {
      std::memcpy(out.RowPtr(i), row, store_->dim() * sizeof(float));
    }
  }
  return out;
}

}  // namespace hybridgnn
