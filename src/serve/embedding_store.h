#ifndef HYBRIDGNN_SERVE_EMBEDDING_STORE_H_
#define HYBRIDGNN_SERVE_EMBEDDING_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/types.h"
#include "tensor/tensor.h"

namespace hybridgnn {

class EmbeddingStore;

/// How LoadCheckpoint materializes tables (defined in serve/checkpoint.h;
/// forward-declared here for the friend declaration below).
enum class LoadMode : int;
StatusOr<EmbeddingStore> LoadCheckpoint(const std::string& path,
                                        LoadMode mode);

/// RAII wrapper around one read-only file mapping. Owned by an
/// EmbeddingStore loaded in zero-copy mode; unmapped on destruction, so the
/// store's spans stay valid exactly as long as the store lives.
struct MmapRegion {
  MmapRegion(void* base, size_t length) : base(base), length(length) {}
  ~MmapRegion();

  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  void* base = nullptr;
  size_t length = 0;
};

/// Immutable collection of per-relationship frozen embedding tables — the
/// serving-side counterpart of a fitted EmbeddingModel. Each relationship r
/// holds a num_rows(r) x dim matrix plus a node-id <-> row mapping (tables
/// need not cover every node). Backing storage is either owned heap memory
/// (LoadMode::kCopy, FromTables) or a borrowed mmap region
/// (LoadMode::kMmap); either way the data is read-only after construction,
/// so lookups are safe from any number of threads.
class EmbeddingStore {
 public:
  /// Sentinel in the node -> row index meaning "node absent from table".
  static constexpr uint32_t kNoRow = UINT32_MAX;

  /// One relationship's table for in-memory construction: `data` is
  /// row_to_node.size() x dim; row i holds the embedding of node
  /// row_to_node[i].
  struct TableInit {
    std::string name;
    std::vector<NodeId> row_to_node;
    Tensor data;
  };

  /// Builds an owning store from materialized tables. All tables must share
  /// one dim; row counts must match the mappings; node ids must be unique
  /// within a table and < num_nodes.
  static StatusOr<EmbeddingStore> FromTables(std::string model_name,
                                             size_t num_nodes,
                                             std::vector<TableInit> tables);

  EmbeddingStore(const EmbeddingStore&) = delete;
  EmbeddingStore& operator=(const EmbeddingStore&) = delete;
  EmbeddingStore(EmbeddingStore&&) = default;
  EmbeddingStore& operator=(EmbeddingStore&&) = default;

  const std::string& model_name() const { return model_name_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_relations() const { return tables_.size(); }
  size_t dim() const { return dim_; }
  /// True when backed by a file mapping instead of owned memory.
  bool mmapped() const { return mapping_ != nullptr; }

  const std::string& relation_name(RelationId r) const {
    return tables_[r].name;
  }
  /// Id of a relation by name, or kInvalidRelation.
  RelationId FindRelation(const std::string& name) const;

  size_t NumRows(RelationId r) const { return tables_[r].row_to_node.size(); }
  /// Node id stored at `row` of relation `r`'s table.
  NodeId RowNode(RelationId r, size_t row) const {
    return tables_[r].row_to_node[row];
  }
  /// Row index of node `v` in relation `r`'s table, or kNoRow.
  uint32_t RowOf(NodeId v, RelationId r) const {
    const auto& idx = tables_[r].node_to_row;
    return v < idx.size() ? idx[v] : kNoRow;
  }

  /// Pointer to node `v`'s dim-length embedding under `r`, or nullptr when
  /// `r` is out of range or the table does not cover `v`.
  const float* Lookup(NodeId v, RelationId r) const {
    if (r >= tables_.size()) return nullptr;
    const uint32_t row = RowOf(v, r);
    if (row == kNoRow) return nullptr;
    return tables_[r].data.data() + static_cast<size_t>(row) * dim_;
  }

  /// The whole num_rows x dim table of relation `r`, row-major.
  std::span<const float> Table(RelationId r) const { return tables_[r].data; }
  /// Row -> node mapping of relation `r`.
  std::span<const NodeId> RowNodes(RelationId r) const {
    return tables_[r].row_to_node;
  }

 private:
  friend StatusOr<EmbeddingStore> LoadCheckpoint(const std::string&,
                                                 LoadMode);

  struct RelationTable {
    std::string name;
    std::span<const float> data;       // num_rows * dim floats
    std::vector<NodeId> row_to_node;   // row -> node id
    std::vector<uint32_t> node_to_row; // node id -> row or kNoRow
  };

  EmbeddingStore() = default;

  /// Builds node_to_row from row_to_node; fails on duplicate or
  /// out-of-range node ids.
  static Status IndexTable(RelationTable& table, size_t num_nodes);

  std::string model_name_;
  size_t num_nodes_ = 0;
  size_t dim_ = 0;
  std::vector<RelationTable> tables_;
  std::vector<std::vector<float>> owned_;  // backing storage in copy mode
  std::unique_ptr<MmapRegion> mapping_;    // backing storage in mmap mode
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_EMBEDDING_STORE_H_
