#ifndef HYBRIDGNN_SERVE_EMBEDDING_STORE_H_
#define HYBRIDGNN_SERVE_EMBEDDING_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/types.h"
#include "tensor/tensor.h"

namespace hybridgnn {

class EmbeddingStore;

/// How LoadCheckpoint materializes tables (defined in serve/checkpoint.h;
/// forward-declared here for the friend declaration below).
enum class LoadMode : int;
StatusOr<EmbeddingStore> LoadCheckpoint(const std::string& path,
                                        LoadMode mode);

/// Element type of an EmbeddingStore's table payload. Training always
/// produces kF32; the quantized variants exist for the serving tier, where
/// candidate tables are scanned by the dequant-and-score kernels
/// (kernels::ScoreBlockF16 / ScoreBlockI8) at 2x / 4x less memory traffic
/// than fp32.
enum class StoreDType : uint8_t {
  kF32 = 0,
  /// IEEE-754 binary16, elementwise (no per-row metadata). Rounding is
  /// nearest-even, identical between the software converter and F16C.
  kF16 = 1,
  /// Per-row affine uint8: element q of row i dequantizes as
  /// zero[i] + scale[i] * q, with scale = (max-min)/255 and zero = min over
  /// the row (scale 0 for constant rows).
  kI8 = 2,
};

/// "fp32" / "fp16" / "int8".
const char* StoreDTypeName(StoreDType t);
/// Payload bytes per element: 4 / 2 / 1.
size_t StoreDTypeBytes(StoreDType t);

/// RAII wrapper around one read-only file mapping. Owned by an
/// EmbeddingStore loaded in zero-copy mode; unmapped on destruction, so the
/// store's spans stay valid exactly as long as the store lives.
struct MmapRegion {
  MmapRegion(void* base, size_t length) : base(base), length(length) {}
  ~MmapRegion();

  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  void* base = nullptr;
  size_t length = 0;
};

/// Immutable collection of per-relationship frozen embedding tables — the
/// serving-side counterpart of a fitted EmbeddingModel. Each relationship r
/// holds a num_rows(r) x dim matrix plus a node-id <-> row mapping (tables
/// need not cover every node). Backing storage is either owned heap memory
/// (LoadMode::kCopy, FromTables) or a borrowed mmap region
/// (LoadMode::kMmap); either way the data is read-only after construction,
/// so lookups are safe from any number of threads.
class EmbeddingStore {
 public:
  /// Sentinel in the node -> row index meaning "node absent from table".
  static constexpr uint32_t kNoRow = UINT32_MAX;

  /// One relationship's table for in-memory construction: `data` is
  /// row_to_node.size() x dim; row i holds the embedding of node
  /// row_to_node[i].
  struct TableInit {
    std::string name;
    std::vector<NodeId> row_to_node;
    Tensor data;
  };

  /// Builds an owning store from materialized tables. All tables must share
  /// one dim; row counts must match the mappings; node ids must be unique
  /// within a table and < num_nodes. The result is always kF32.
  static StatusOr<EmbeddingStore> FromTables(std::string model_name,
                                             size_t num_nodes,
                                             std::vector<TableInit> tables);

  /// Builds an owning quantized copy of a kF32 store (`dtype` must be kF16
  /// or kI8). Quantization is per element (fp16) or per row (int8, affine
  /// min/max), deterministic, and independent of thread count.
  static StatusOr<EmbeddingStore> Quantized(const EmbeddingStore& src,
                                            StoreDType dtype);

  EmbeddingStore(const EmbeddingStore&) = delete;
  EmbeddingStore& operator=(const EmbeddingStore&) = delete;
  EmbeddingStore(EmbeddingStore&&) = default;
  EmbeddingStore& operator=(EmbeddingStore&&) = default;

  const std::string& model_name() const { return model_name_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_relations() const { return tables_.size(); }
  size_t dim() const { return dim_; }
  /// Element type of every table payload in this store.
  StoreDType dtype() const { return dtype_; }
  /// True when backed by a file mapping instead of owned memory.
  bool mmapped() const { return mapping_ != nullptr; }

  const std::string& relation_name(RelationId r) const {
    return tables_[r].name;
  }
  /// Id of a relation by name, or kInvalidRelation.
  RelationId FindRelation(const std::string& name) const;

  size_t NumRows(RelationId r) const { return tables_[r].row_to_node.size(); }
  /// Node id stored at `row` of relation `r`'s table.
  NodeId RowNode(RelationId r, size_t row) const {
    return tables_[r].row_to_node[row];
  }
  /// Row index of node `v` in relation `r`'s table, or kNoRow.
  uint32_t RowOf(NodeId v, RelationId r) const {
    const auto& idx = tables_[r].node_to_row;
    return v < idx.size() ? idx[v] : kNoRow;
  }

  /// Pointer to node `v`'s dim-length embedding under `r`, or nullptr when
  /// `r` is out of range, the table does not cover `v`, or the store is
  /// quantized (use DequantizeRow then).
  const float* Lookup(NodeId v, RelationId r) const {
    if (dtype_ != StoreDType::kF32 || r >= tables_.size()) return nullptr;
    const uint32_t row = RowOf(v, r);
    if (row == kNoRow) return nullptr;
    return tables_[r].data.data() + static_cast<size_t>(row) * dim_;
  }

  /// The whole num_rows x dim table of relation `r`, row-major. Only
  /// populated for kF32 stores (empty span when quantized).
  std::span<const float> Table(RelationId r) const { return tables_[r].data; }
  /// Raw quantized payload of relation `r`: num_rows * dim elements of
  /// StoreDTypeBytes(dtype()) each (u16 halves for kF16, u8 codes for kI8).
  /// Empty for kF32 stores.
  std::span<const uint8_t> RawTable(RelationId r) const {
    return tables_[r].qdata;
  }
  /// Per-row dequantization scales / zero points of relation `r` (kI8
  /// only; empty otherwise).
  std::span<const float> RowScales(RelationId r) const {
    return tables_[r].scales;
  }
  std::span<const float> RowZeros(RelationId r) const {
    return tables_[r].zeros;
  }

  /// Materializes table row `row` of relation `r` (NOT a node id — see
  /// RowOf) as dim() floats into `out`, whatever the dtype. For kF32 this
  /// is a copy; for kF16/kI8 it applies the dequantization the scoring
  /// kernels use, so a dequantized row scores identically to the in-place
  /// quantized scan.
  void DequantizeRow(RelationId r, uint32_t row, float* out) const;

  /// Row -> node mapping of relation `r`.
  std::span<const NodeId> RowNodes(RelationId r) const {
    return tables_[r].row_to_node;
  }

 private:
  friend StatusOr<EmbeddingStore> LoadCheckpoint(const std::string&,
                                                 LoadMode);

  struct RelationTable {
    std::string name;
    std::span<const float> data;       // kF32: num_rows * dim floats
    std::span<const uint8_t> qdata;    // kF16/kI8: raw quantized payload
    std::span<const float> scales;     // kI8: per-row scale
    std::span<const float> zeros;      // kI8: per-row zero point
    std::vector<NodeId> row_to_node;   // row -> node id
    std::vector<uint32_t> node_to_row; // node id -> row or kNoRow
  };

  EmbeddingStore() = default;

  /// Builds node_to_row from row_to_node; fails on duplicate or
  /// out-of-range node ids.
  static Status IndexTable(RelationTable& table, size_t num_nodes);

  std::string model_name_;
  size_t num_nodes_ = 0;
  size_t dim_ = 0;
  StoreDType dtype_ = StoreDType::kF32;
  std::vector<RelationTable> tables_;
  std::vector<std::vector<float>> owned_;  // f32 tables + i8 scales/zeros
  std::vector<std::vector<uint8_t>> owned_bytes_;  // quantized payloads
  std::unique_ptr<MmapRegion> mapping_;    // backing storage in mmap mode
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_EMBEDDING_STORE_H_
