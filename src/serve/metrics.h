#ifndef HYBRIDGNN_SERVE_METRICS_H_
#define HYBRIDGNN_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.h"

namespace hybridgnn {

/// The serving latency histogram is the shared observability one
/// (obs/histogram.h); the alias keeps the original serve-era spelling
/// working.
using LatencyHistogram = obs::LatencyHistogram;

/// Point-in-time copy of the serving counters, safe to read after the
/// service is gone.
struct MetricsSnapshot {
  uint64_t requests = 0;       // queries answered (ok or error)
  uint64_t errors = 0;         // queries answered with a non-OK status
  uint64_t batches = 0;        // micro-batches dispatched
  uint64_t items_returned = 0; // total recommendations across responses
  double mean_batch_size = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;

  /// One-line human-readable summary for CLI / bench output.
  std::string ToString() const;
};

/// Counters + latency histogram shared by RecommendService and its clients.
/// Everything is atomic, so concurrent Submit/Snapshot never needs a lock.
/// These are per-service-instance numbers; RecommendService additionally
/// mirrors them into the process-wide obs::GlobalRegistry() under `serve/*`.
struct ServeMetrics {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> items_returned{0};
  LatencyHistogram latency;

  MetricsSnapshot Snapshot() const;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_METRICS_H_
