#ifndef HYBRIDGNN_SERVE_METRICS_H_
#define HYBRIDGNN_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace hybridgnn {

/// Lock-free log2-bucketed latency histogram. Buckets are powers of two
/// starting at 1 microsecond (bucket i covers [2^i, 2^(i+1)) us), which
/// spans 1us .. ~17min in 30 buckets — plenty for request latencies.
/// Record() is wait-free (one relaxed fetch_add); Percentile() walks the
/// bucket counts and returns the upper bound of the bucket containing the
/// requested rank, i.e. a conservative (<= 2x) estimate. All methods are
/// safe to call concurrently.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 30;

  LatencyHistogram() = default;

  /// Records one observation in milliseconds.
  void Record(double ms);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Mean of all recorded values in milliseconds (exact, not bucketed).
  double MeanMs() const;

  /// Approximate percentile (pct in [0, 100]) in milliseconds. Returns 0
  /// when nothing has been recorded.
  double PercentileMs(double pct) const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
};

/// Point-in-time copy of the serving counters, safe to read after the
/// service is gone.
struct MetricsSnapshot {
  uint64_t requests = 0;       // queries answered (ok or error)
  uint64_t errors = 0;         // queries answered with a non-OK status
  uint64_t batches = 0;        // micro-batches dispatched
  uint64_t items_returned = 0; // total recommendations across responses
  double mean_batch_size = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;

  /// One-line human-readable summary for CLI / bench output.
  std::string ToString() const;
};

/// Counters + latency histogram shared by RecommendService and its clients.
/// Everything is atomic, so concurrent Submit/Snapshot never needs a lock.
struct ServeMetrics {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> items_returned{0};
  LatencyHistogram latency;

  MetricsSnapshot Snapshot() const;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_METRICS_H_
