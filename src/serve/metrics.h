#ifndef HYBRIDGNN_SERVE_METRICS_H_
#define HYBRIDGNN_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.h"

namespace hybridgnn {

/// The serving latency histogram is the shared observability one
/// (obs/histogram.h); the alias keeps the original serve-era spelling
/// working.
using LatencyHistogram = obs::LatencyHistogram;

/// Point-in-time copy of the serving counters, safe to read after the
/// service is gone.
struct MetricsSnapshot {
  uint64_t requests = 0;       // queries answered by a batch (ok or error)
  uint64_t errors = 0;         // queries answered with a non-OK status
  uint64_t batches = 0;        // micro-batches dispatched
  uint64_t items_returned = 0; // total recommendations across responses
  uint64_t shed = 0;           // rejected at Submit (queue full)
  uint64_t deadline_exceeded = 0;  // expired before scoring started
  uint64_t cache_hits = 0;     // answered from the warm result cache
  uint64_t cache_misses = 0;   // cache enabled but had to score
  double mean_batch_size = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  double batch_service_p50_ms = 0.0;
  double batch_service_p99_ms = 0.0;

  /// One-line human-readable summary for CLI / bench output.
  std::string ToString() const;
};

/// Counters + latency histogram shared by RecommendService and its clients.
/// Everything is atomic, so concurrent Submit/Snapshot never needs a lock.
/// These are per-service-instance numbers; RecommendService additionally
/// mirrors them into the process-wide obs::GlobalRegistry() under `serve/*`.
struct ServeMetrics {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> items_returned{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  /// End-to-end Submit -> resolve latency of batch-answered requests. Shed
  /// requests never enter it: a load-shed rejection resolving in
  /// microseconds would otherwise drag p50/p99 down exactly when the
  /// service is at its slowest.
  LatencyHistogram latency;
  /// Submit -> batch-pickup wait, per request. Under load this is where
  /// latency hides; the old single histogram stamped every request with
  /// whole-batch end-to-end time and could not show it.
  LatencyHistogram queue_wait;
  /// Batch pickup -> all-responses-resolved, per micro-batch.
  LatencyHistogram batch_service;

  MetricsSnapshot Snapshot() const;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_METRICS_H_
