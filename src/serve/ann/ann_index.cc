#include "serve/ann/ann_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <queue>

#include "common/env.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/kernels.h"

namespace hybridgnn {

namespace {

/// Search-frontier entry: a scored row. "Better" means higher similarity,
/// ties resolved toward the smaller row id — the same rule the exact
/// scanner's heap uses, so ANN ordering is deterministic for equal scores.
struct Scored {
  double sim;
  uint32_t row;
};

bool Better(const Scored& a, const Scored& b) {
  if (a.sim != b.sim) return a.sim > b.sim;
  return a.row < b.row;
}

/// priority_queue comparator whose top() is the *best* entry (expansion
/// beam).
struct BestOnTop {
  bool operator()(const Scored& a, const Scored& b) const {
    return Better(b, a);
  }
};

/// priority_queue comparator whose top() is the *worst* entry (bounded
/// result set).
struct WorstOnTop {
  bool operator()(const Scored& a, const Scored& b) const {
    return Better(a, b);
  }
};

/// Per-search visited bitmap (query path: one allocation per search keeps
/// const Search safe from any number of threads).
class BitmapVisited {
 public:
  explicit BitmapVisited(size_t n) : bits_((n + 63) / 64, 0) {}
  bool TestAndSet(uint32_t i) {
    uint64_t& word = bits_[i >> 6];
    const uint64_t mask = 1ull << (i & 63);
    if (word & mask) return true;
    word |= mask;
    return false;
  }

 private:
  std::vector<uint64_t> bits_;
};

/// Epoch-stamped visited set (build path: reused across the O(rows)
/// insertions without per-insert clearing).
class StampVisited {
 public:
  explicit StampVisited(size_t n) : stamp_(n, 0) {}
  void NextEpoch() {
    if (++epoch_ == 0) {  // wrapped: reset lazily
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }
  bool TestAndSet(uint32_t i) {
    if (stamp_[i] == epoch_) return true;
    stamp_[i] = epoch_;
    return false;
  }
  void Grow(size_t n) { stamp_.resize(n, 0); }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
};

/// Deterministic per-row level draw: a pure function of (seed, row), so a
/// row keeps its level whether it arrives during Build or a later Patched
/// append. Geometric with ratio 1/M (the HNSW paper's mL = 1/ln(M)).
int LevelFor(uint64_t seed, uint32_t row, size_t M) {
  double u = Rng(seed).Fork(row).UniformDouble();
  if (u < 1e-300) u = 1e-300;
  const double ml = 1.0 / std::log(static_cast<double>(std::max<size_t>(2, M)));
  const int level = static_cast<int>(-std::log(u) * ml);
  return std::min(level, 32);
}

void HashBytes(uint64_t& h, const void* data, size_t bytes) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h = (h ^ p[i]) * 1099511628211ull;
  }
}

}  // namespace

bool ResolveAnnEnabled(bool requested) {
  const std::string v = GetEnvString("HYBRIDGNN_ANN", "");
  if (v == "on" || v == "1" || v == "true") return true;
  if (v == "off" || v == "0" || v == "false") return false;
  return requested;
}

/// Mutable view of an index under construction plus the scoring state the
/// insertion algorithm needs: an fp32 copy of the table (borrowed straight
/// from a non-cosine kF32 store, materialized otherwise) and per-worker
/// search scratch. The batch-parallel build runs PlanInsert (read-only
/// searches) concurrently, one Scratch per worker, then ApplyInsert
/// serially in ascending row order — so the produced bytes never depend on
/// the thread count.
struct AnnIndex::Builder {
  /// Per-worker search state: visited stamps plus reusable buffers.
  struct Scratch {
    StampVisited visited;
    std::vector<Scored> pool;
    std::vector<uint32_t> batch;
    std::vector<double> scores;
    std::vector<float> gather;

    explicit Scratch(size_t rows) : visited(rows) {}
  };

  /// The candidate pools one row's insertion needs, computed against the
  /// graph as frozen at its batch boundary: cand[l] is the best-first,
  /// self-excluded pool for level l (empty above the row's insertion
  /// levels).
  struct InsertPlan {
    std::vector<std::vector<Scored>> cand;
  };

  AnnIndex* idx;
  const float* vecs = nullptr;       // num_rows x dim
  std::vector<float> owned_vecs;     // backing unless borrowed
  Scratch serial;                    // scratch of the serial (apply) phase
  std::vector<uint32_t> selected;
  std::vector<uint32_t> frontier;

  explicit Builder(AnnIndex* idx) : idx(idx), serial(idx->num_rows_) {}

  const float* Vec(uint32_t row) const {
    return vecs + static_cast<size_t>(row) * idx->dim_;
  }

  double Sim(const float* q, uint32_t row) const {
    double s = 0.0;
    kernels::ScoreBlock(q, Vec(row), 1, idx->dim_, &s);
    return s;
  }

  /// out[i] = dot(q, vec(rows[i])) in one gathered kernel call — the build
  /// hot path expands whole adjacency lists at a time, and one ScoreBlock
  /// over a gathered slab beats a kernel dispatch per neighbor.
  void SimMany(const float* q, const uint32_t* rows, size_t n, double* out,
               Scratch& s) const {
    const size_t dim = idx->dim_;
    if (s.gather.size() < n * dim) s.gather.resize(n * dim);
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(s.gather.data() + i * dim,
                  vecs + static_cast<size_t>(rows[i]) * dim,
                  dim * sizeof(float));
    }
    kernels::ScoreBlock(q, s.gather.data(), n, dim, out);
  }

  /// Materializes (or borrows) the fp32 vector matrix from `store`.
  void LoadVectors(const EmbeddingStore& store, RelationId rel) {
    const size_t dim = idx->dim_;
    const size_t rows = store.NumRows(rel);
    if (store.dtype() == StoreDType::kF32 && !idx->options_.cosine) {
      vecs = store.Table(rel).data();
      return;
    }
    owned_vecs.resize(rows * dim);
    for (size_t i = 0; i < rows; ++i) {
      store.DequantizeRow(rel, static_cast<uint32_t>(i),
                          owned_vecs.data() + i * dim);
    }
    if (idx->options_.cosine) {
      // Build in the space the recommender ranks in: traversal compares
      // normalized dots, so normalize the construction copies once.
      for (size_t i = 0; i < rows; ++i) {
        float* v = owned_vecs.data() + i * dim;
        double n2 = 0.0;
        for (size_t j = 0; j < dim; ++j) n2 += static_cast<double>(v[j]) * v[j];
        const float inv =
            n2 == 0.0 ? 1.0f : static_cast<float>(1.0 / std::sqrt(n2));
        for (size_t j = 0; j < dim; ++j) v[j] *= inv;
      }
    }
    vecs = owned_vecs.data();
  }

  std::span<const uint32_t> Links(uint32_t row, int level) const {
    if (level == 0) {
      return {idx->links0_.data() + static_cast<size_t>(row) * idx->M0_,
              idx->counts0_[row]};
    }
    const uint32_t* slab = idx->UpperSlab(row, level);
    return {slab + 1, slab[0]};
  }

  void SetLinks(uint32_t row, int level, std::span<const uint32_t> nbrs) {
    if (level == 0) {
      std::copy(nbrs.begin(), nbrs.end(),
                idx->links0_.begin() + static_cast<size_t>(row) * idx->M0_);
      idx->counts0_[row] = static_cast<uint32_t>(nbrs.size());
      return;
    }
    uint32_t* slab = idx->UpperSlab(row, level);
    slab[0] = static_cast<uint32_t>(nbrs.size());
    std::copy(nbrs.begin(), nbrs.end(), slab + 1);
  }

  /// Best-first beam search on one level over the construction vectors;
  /// leaves `s.pool` sorted best-first. Read-only on the index — safe to
  /// run concurrently from many workers with distinct scratch.
  void SearchLayer(const float* q, uint32_t ep, size_t ef, int level,
                   Scratch& s) const {
    s.visited.NextEpoch();
    std::priority_queue<Scored, std::vector<Scored>, BestOnTop> beam;
    std::priority_queue<Scored, std::vector<Scored>, WorstOnTop> results;
    const Scored first{Sim(q, ep), ep};
    s.visited.TestAndSet(ep);
    beam.push(first);
    results.push(first);
    while (!beam.empty()) {
      const Scored c = beam.top();
      beam.pop();
      if (results.size() >= ef && !Better(c, results.top())) break;
      s.batch.clear();
      for (uint32_t n : Links(c.row, level)) {
        if (!s.visited.TestAndSet(n)) s.batch.push_back(n);
      }
      if (s.batch.empty()) continue;
      s.scores.resize(s.batch.size());
      SimMany(q, s.batch.data(), s.batch.size(), s.scores.data(), s);
      for (size_t i = 0; i < s.batch.size(); ++i) {
        const Scored cand{s.scores[i], s.batch[i]};
        if (results.size() < ef || Better(cand, results.top())) {
          beam.push(cand);
          results.push(cand);
          if (results.size() > ef) results.pop();
        }
      }
    }
    s.pool.resize(results.size());
    for (size_t i = results.size(); i-- > 0;) {
      s.pool[i] = results.top();
      results.pop();
    }
  }

  /// Greedy descent on one upper level: walk to the strictly best neighbor
  /// until no neighbor improves. Returns the local optimum. Read-only.
  Scored GreedyStep(const float* q, Scored ep, int level, Scratch& s) const {
    for (;;) {
      auto links = Links(ep.row, level);
      if (links.empty()) return ep;
      s.scores.resize(links.size());
      SimMany(q, links.data(), links.size(), s.scores.data(), s);
      Scored best = ep;
      for (size_t i = 0; i < links.size(); ++i) {
        const Scored cand{s.scores[i], links[i]};
        if (Better(cand, best)) best = cand;
      }
      if (best.row == ep.row) return ep;
      ep = best;
    }
  }

  /// HNSW neighbor-selection heuristic (paper Algorithm 4) over the
  /// best-first `cand` list: keep c only when it is closer to q than to any
  /// already-kept neighbor (diversifies the graph around clusters), then
  /// backfill with pruned candidates so every node keeps up to `m` links.
  void SelectNeighbors(const float* q, const std::vector<Scored>& cand,
                       size_t m) {
    (void)q;
    selected.clear();
    std::vector<uint32_t> pruned;
    for (const Scored& c : cand) {
      if (selected.size() >= m) break;
      bool keep = true;
      if (!selected.empty()) {
        // One gathered kernel call for c-vs-every-kept, instead of a
        // dispatch per kept neighbor (the early-exit saved less than the
        // per-call overhead cost).
        serial.scores.resize(selected.size());
        SimMany(Vec(c.row), selected.data(), selected.size(),
                serial.scores.data(), serial);
        for (double between : serial.scores) {
          if (between > c.sim) {
            keep = false;
            break;
          }
        }
      }
      if (keep) {
        selected.push_back(c.row);
      } else {
        pruned.push_back(c.row);
      }
    }
    for (uint32_t p : pruned) {
      if (selected.size() >= m) break;
      selected.push_back(p);
    }
  }

  /// Adds `to` to `from`'s list at `level`, shrinking by the selection
  /// heuristic when the list overflows its cap. No-op when the link already
  /// exists (a re-linked row can still be pointed at by stale reverse
  /// links).
  void Link(uint32_t from, uint32_t to, int level) {
    const size_t cap = level == 0 ? idx->M0_ : idx->M_;
    auto links = Links(from, level);
    if (std::find(links.begin(), links.end(), to) != links.end()) return;
    if (links.size() < cap) {
      if (level == 0) {
        idx->links0_[static_cast<size_t>(from) * idx->M0_ + links.size()] = to;
        ++idx->counts0_[from];
      } else {
        uint32_t* slab = idx->UpperSlab(from, level);
        slab[1 + slab[0]] = to;
        ++slab[0];
      }
      return;
    }
    // Overflow: rescore existing + new against `from`, reselect.
    const float* fv = Vec(from);
    serial.batch.assign(links.begin(), links.end());
    serial.batch.push_back(to);
    serial.scores.resize(serial.batch.size());
    SimMany(fv, serial.batch.data(), serial.batch.size(),
            serial.scores.data(), serial);
    std::vector<Scored> cand;
    cand.reserve(serial.batch.size());
    for (size_t i = 0; i < serial.batch.size(); ++i) {
      cand.push_back({serial.scores[i], serial.batch[i]});
    }
    std::sort(cand.begin(), cand.end(), Better);
    SelectNeighbors(fv, cand, cap);
    SetLinks(from, level, selected);
  }

  /// Phase A — read-only: computes the per-level candidate pools for
  /// inserting `row`, descending from `start` (the entry point — except
  /// when re-linking the entry row itself, whose cleared links would strand
  /// a self-start; the caller then substitutes any other row and the
  /// descent begins at that row's top level). Safe to run concurrently for
  /// distinct rows with distinct scratch: it never touches the adjacency.
  InsertPlan PlanInsert(uint32_t row, uint32_t start, Scratch& s) const {
    InsertPlan plan;
    const int level = idx->levels_[row];
    const int start_level =
        start == idx->entry_ ? idx->max_level_ : idx->levels_[start];
    const float* q = Vec(row);
    Scored ep{Sim(q, start), start};
    for (int l = start_level; l > level; --l) {
      ep = GreedyStep(q, ep, l, s);
    }
    const int top = std::min(level, start_level);
    plan.cand.resize(static_cast<size_t>(top) + 1);
    for (int l = top; l >= 0; --l) {
      SearchLayer(q, ep.row, idx->options_.ef_construction, l, s);
      // The query row itself can be in the pool on a re-link: never link a
      // node to itself.
      auto& cand = plan.cand[l];
      cand.reserve(s.pool.size());
      for (const Scored& c : s.pool) {
        if (c.row != row) cand.push_back(c);
      }
      if (!cand.empty()) ep = cand.front();
    }
    return plan;
  }

  /// Phase B — serial: wires `row` into the graph from its plan's pools
  /// (forward links via the selection heuristic, then reverse links), and
  /// promotes it to entry point when its level tops the index.
  void ApplyInsert(uint32_t row, const InsertPlan& plan) {
    const float* q = Vec(row);
    for (int l = static_cast<int>(plan.cand.size()) - 1; l >= 0; --l) {
      const size_t cap = l == 0 ? idx->M0_ : idx->M_;
      SelectNeighbors(q, plan.cand[l], std::min(cap, idx->M_));
      SetLinks(row, l, selected);
      // Reverse links (selection may mutate `selected` via Link's reuse of
      // the scratch, so iterate over a copy).
      frontier.assign(selected.begin(), selected.end());
      for (uint32_t n : frontier) Link(n, row, l);
    }
    const int level = idx->levels_[row];
    if (level > idx->max_level_) {
      idx->max_level_ = level;
      idx->entry_ = row;
    }
  }

  /// Serial insert (warmup prefix, Patched re-links/appends).
  void Insert(uint32_t row, uint32_t start) {
    ApplyInsert(row, PlanInsert(row, start, serial));
  }
};

uint32_t* AnnIndex::UpperSlab(uint32_t row, int level) {
  return upper_.data() +
         (static_cast<size_t>(upper_offset_[row]) + (level - 1)) * (1 + M_);
}

const uint32_t* AnnIndex::UpperSlab(uint32_t row, int level) const {
  return upper_.data() +
         (static_cast<size_t>(upper_offset_[row]) + (level - 1)) * (1 + M_);
}

StatusOr<std::shared_ptr<const AnnIndex>> AnnIndex::Build(
    const EmbeddingStore& store, RelationId rel,
    const AnnBuildOptions& options) {
  if (rel >= store.num_relations()) {
    return Status::InvalidArgument("unknown relation id " +
                                   std::to_string(rel));
  }
  const size_t rows = store.NumRows(rel);
  if (rows == 0) {
    return Status::InvalidArgument("cannot build an ANN index over relation '" +
                                   store.relation_name(rel) +
                                   "': empty table");
  }
  if (options.M < 2 || options.ef_construction < options.M) {
    return Status::InvalidArgument(
        "AnnBuildOptions: need M >= 2 and ef_construction >= M");
  }
  std::shared_ptr<AnnIndex> idx(new AnnIndex());
  idx->options_ = options;
  idx->dim_ = store.dim();
  idx->num_rows_ = rows;
  idx->M_ = options.M;
  idx->M0_ = 2 * options.M;
  idx->levels_.resize(rows);
  idx->counts0_.assign(rows, 0);
  idx->links0_.assign(rows * idx->M0_, 0);
  idx->upper_offset_.assign(rows, kNoSlab);
  size_t slabs = 0;
  for (size_t i = 0; i < rows; ++i) {
    const int level = LevelFor(options.seed, static_cast<uint32_t>(i),
                               options.M);
    idx->levels_[i] = static_cast<uint8_t>(level);
    if (level > 0) {
      idx->upper_offset_[i] = static_cast<uint32_t>(slabs);
      slabs += static_cast<size_t>(level);
    }
  }
  idx->upper_.assign(slabs * (1 + idx->M_), 0);
  idx->entry_ = 0;
  idx->max_level_ = idx->levels_[0];

  Builder builder(idx.get());
  builder.LoadVectors(store, rel);
  // Serial warmup: the first few hundred rows form the graph's skeleton, and
  // batching them would blind too large a fraction of each batch to its
  // contemporaries.
  const size_t batch = std::max<size_t>(1, options.insert_batch);
  const size_t warmup = std::min(rows, std::max<size_t>(2 * batch, 256));
  for (size_t i = 1; i < warmup; ++i) {
    builder.Insert(static_cast<uint32_t>(i), idx->entry_);
  }
  // Batch-parallel phase. Per batch: Phase A plans every insert concurrently
  // against the adjacency as frozen at the batch boundary (read-only), then
  // Phase B applies links serially in ascending row order. The produced
  // bytes depend on `insert_batch` (rows inside one batch cannot see each
  // other) but never on the thread count — chunk c always plans rows
  // c, c+chunks, c+2*chunks, ... regardless of which worker runs it.
  const size_t threads = ResolveNumThreads(options.build_threads);
  std::vector<Builder::Scratch> scratch;
  std::vector<Builder::InsertPlan> plans(batch);
  for (size_t base = warmup; base < rows; base += batch) {
    const size_t count = std::min(batch, rows - base);
    const size_t chunks = std::min(threads, count);
    while (scratch.size() < chunks) scratch.emplace_back(rows);
    RunParallel(threads, chunks, [&](size_t c) {
      for (size_t j = c; j < count; j += chunks) {
        plans[j] = builder.PlanInsert(static_cast<uint32_t>(base + j),
                                      idx->entry_, scratch[c]);
      }
    });
    for (size_t j = 0; j < count; ++j) {
      builder.ApplyInsert(static_cast<uint32_t>(base + j), plans[j]);
    }
  }
  return std::shared_ptr<const AnnIndex>(std::move(idx));
}

StatusOr<std::shared_ptr<const AnnIndex>> AnnIndex::Patched(
    const AnnIndex& prev, const EmbeddingStore& store, RelationId rel,
    std::span<const uint32_t> dirty_rows) {
  if (rel >= store.num_relations()) {
    return Status::InvalidArgument("unknown relation id " +
                                   std::to_string(rel));
  }
  const size_t rows = store.NumRows(rel);
  if (rows < prev.num_rows_ || store.dim() != prev.dim_) {
    return Status::InvalidArgument(
        "AnnIndex::Patched: store shape regressed vs the previous index "
        "(rows " +
        std::to_string(rows) + " < " + std::to_string(prev.num_rows_) +
        " or dim mismatch); rebuild instead");
  }
  std::shared_ptr<AnnIndex> idx(new AnnIndex(prev));  // copy-on-write
  idx->num_rows_ = rows;
  idx->levels_.resize(rows);
  idx->counts0_.resize(rows, 0);
  idx->links0_.resize(rows * idx->M0_, 0);
  idx->upper_offset_.resize(rows, kNoSlab);
  size_t slabs = idx->upper_.size() / (1 + idx->M_);
  for (size_t i = prev.num_rows_; i < rows; ++i) {
    const int level = LevelFor(idx->options_.seed, static_cast<uint32_t>(i),
                               idx->M_);
    idx->levels_[i] = static_cast<uint8_t>(level);
    if (level > 0) {
      idx->upper_offset_[i] = static_cast<uint32_t>(slabs);
      slabs += static_cast<size_t>(level);
    }
  }
  idx->upper_.resize(slabs * (1 + idx->M_), 0);

  Builder builder(idx.get());
  builder.serial.visited.Grow(rows);
  builder.LoadVectors(store, rel);
  // Re-link changed rows (out-links rebuilt; stale incoming links keep
  // pointing at the moved vector, costing recall, not correctness), then
  // insert the appended rows. Both passes run in ascending row order so a
  // patch is as deterministic as a build.
  for (uint32_t r : dirty_rows) {
    if (r >= prev.num_rows_) continue;   // appended rows insert below
    if (idx->num_rows_ < 2) continue;    // single row: nothing to link to
    idx->counts0_[r] = 0;
    for (int l = 1; l <= idx->levels_[r]; ++l) idx->UpperSlab(r, l)[0] = 0;
    uint32_t start = idx->entry_;
    if (start == r) start = r == 0 ? 1 : 0;  // num_rows_ >= 2 here
    builder.Insert(r, start);
  }
  for (size_t i = prev.num_rows_; i < rows; ++i) {
    builder.Insert(static_cast<uint32_t>(i), idx->entry_);
  }
  return std::shared_ptr<const AnnIndex>(std::move(idx));
}

void AnnIndex::Search(BlockScorer& scorer, size_t ef,
                      std::span<const float> row_norms,
                      std::vector<uint32_t>* out, SearchStats* stats) const {
  out->clear();
  if (ef == 0 || num_rows_ == 0) return;
  // Batched, dtype-dispatched scoring of scattered rows; cosine mode
  // divides by the precomputed row norms so traversal ranks in the space
  // the index was built in.
  std::vector<uint32_t> batch_rows;
  std::vector<double> batch_scores;
  auto score_many = [&](const uint32_t* rows, size_t n, double* sims) {
    for (size_t base = 0; base < n; base += BlockScorer::kBlockRows) {
      const size_t count = std::min(BlockScorer::kBlockRows, n - base);
      scorer.ScoreRows(rows + base, count, sims + base);
    }
    if (!row_norms.empty()) {
      for (size_t i = 0; i < n; ++i) {
        const float norm = row_norms[rows[i]];
        sims[i] /= norm == 0.0f ? 1.0f : norm;
      }
    }
  };
  auto score_one = [&](uint32_t row) {
    double s = 0.0;
    score_many(&row, 1, &s);
    return s;
  };

  Scored ep{score_one(entry_), entry_};
  // Greedy descent through the upper levels.
  for (int l = max_level_; l >= 1; --l) {
    for (;;) {
      const uint32_t* slab = UpperSlab(ep.row, l);
      const size_t n = slab[0];
      if (n == 0) break;
      batch_rows.assign(slab + 1, slab + 1 + n);
      batch_scores.resize(n);
      score_many(batch_rows.data(), n, batch_scores.data());
      if (stats != nullptr) ++stats->hops;
      Scored best = ep;
      for (size_t i = 0; i < n; ++i) {
        const Scored s{batch_scores[i], batch_rows[i]};
        if (Better(s, best)) best = s;
      }
      if (best.row == ep.row) break;
      ep = best;
    }
  }

  // ef-wide best-first search on the base layer.
  BitmapVisited visited(num_rows_);
  std::priority_queue<Scored, std::vector<Scored>, BestOnTop> beam;
  std::priority_queue<Scored, std::vector<Scored>, WorstOnTop> results;
  visited.TestAndSet(ep.row);
  beam.push(ep);
  results.push(ep);
  while (!beam.empty()) {
    const Scored c = beam.top();
    beam.pop();
    if (results.size() >= ef && !Better(c, results.top())) break;
    if (stats != nullptr) ++stats->hops;
    const uint32_t* links = links0_.data() + static_cast<size_t>(c.row) * M0_;
    batch_rows.clear();
    for (uint32_t i = 0; i < counts0_[c.row]; ++i) {
      if (!visited.TestAndSet(links[i])) batch_rows.push_back(links[i]);
    }
    if (batch_rows.empty()) continue;
    batch_scores.resize(batch_rows.size());
    score_many(batch_rows.data(), batch_rows.size(), batch_scores.data());
    for (size_t i = 0; i < batch_rows.size(); ++i) {
      const Scored s{batch_scores[i], batch_rows[i]};
      if (results.size() < ef || Better(s, results.top())) {
        beam.push(s);
        results.push(s);
        if (results.size() > ef) results.pop();
      }
    }
  }
  out->resize(results.size());
  for (size_t i = results.size(); i-- > 0;) {
    (*out)[i] = results.top().row;
    results.pop();
  }
}

uint64_t AnnIndex::ContentHash() const {
  uint64_t h = 1469598103934665603ull;
  const uint64_t header[] = {num_rows_,
                             dim_,
                             M_,
                             static_cast<uint64_t>(max_level_),
                             entry_,
                             options_.seed};
  HashBytes(h, header, sizeof(header));
  HashBytes(h, levels_.data(), levels_.size() * sizeof(levels_[0]));
  HashBytes(h, counts0_.data(), counts0_.size() * sizeof(counts0_[0]));
  // Hash only the valid prefix of each adjacency list: slack slots are
  // zero-initialized but may hold stale ids after an overflow reselect.
  for (size_t i = 0; i < num_rows_; ++i) {
    HashBytes(h, links0_.data() + i * M0_, counts0_[i] * sizeof(uint32_t));
  }
  for (size_t i = 0; i < num_rows_; ++i) {
    for (int l = 1; l <= levels_[i]; ++l) {
      const uint32_t* slab = UpperSlab(static_cast<uint32_t>(i), l);
      HashBytes(h, slab, (1 + slab[0]) * sizeof(uint32_t));
    }
  }
  return h;
}

size_t AnnIndex::MemoryBytes() const {
  return levels_.size() * sizeof(levels_[0]) +
         counts0_.size() * sizeof(counts0_[0]) +
         links0_.size() * sizeof(links0_[0]) +
         upper_offset_.size() * sizeof(upper_offset_[0]) +
         upper_.size() * sizeof(upper_[0]);
}

}  // namespace hybridgnn
