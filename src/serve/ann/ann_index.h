#ifndef HYBRIDGNN_SERVE_ANN_ANN_INDEX_H_
#define HYBRIDGNN_SERVE_ANN_ANN_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/statusor.h"
#include "serve/block_scorer.h"
#include "serve/embedding_store.h"

namespace hybridgnn {

/// Construction parameters for AnnIndex. Small-world quality is governed by
/// `M` (graph degree) and `ef_construction` (beam width during insertion);
/// both trade build time for recall. Construction is fully deterministic:
/// the level of table row i is a pure function of (seed, i), rows are
/// inserted in ascending row order, and the batch-parallel build only
/// parallelizes the read-only searches — link application is serial — so
/// two builds over the same table with the same structure-affecting options
/// produce byte-identical adjacency for ANY thread count (pinned by
/// tests/ann_test.cc).
struct AnnBuildOptions {
  /// Max out-links per node on levels >= 1; level 0 keeps up to 2*M.
  size_t M = 16;
  /// Beam width of the insertion-time layer search.
  size_t ef_construction = 100;
  /// Seeds the per-row level assignment (Rng(seed).Fork(row)).
  uint64_t seed = 0xA55EED;
  /// Rank by cosine instead of raw dot during construction and traversal:
  /// the build-time vector copies are L2-normalized, matching the
  /// recommender's cosine ordering. Set from TopKOptions::cosine.
  bool cosine = false;
  /// Publish-time patch policy: when more than this fraction of the
  /// previous index's rows changed, patching degrades recall too far and a
  /// full rebuild runs instead.
  double max_patch_fraction = 0.2;
  /// Insertion batch of the parallel build: each batch's candidate searches
  /// run concurrently against the graph as frozen at the batch boundary,
  /// then links apply serially in ascending row order. Rows inside one
  /// batch cannot see each other during search, so the batch size is
  /// structure-affecting (and part of operator==); the thread count is not.
  size_t insert_batch = 64;
  /// Worker threads for the batch searches. 0 defers to HYBRIDGNN_THREADS
  /// (DefaultNumThreads), 1 builds serially. Never affects the produced
  /// index bytes — excluded from operator==.
  size_t build_threads = 0;

  /// Equality over the structure-affecting fields only (the patch-vs-
  /// rebuild policy key in topk.cc): build_threads steers wall clock, not
  /// bytes, so two configs differing only there are interchangeable.
  bool operator==(const AnnBuildOptions& o) const {
    return M == o.M && ef_construction == o.ef_construction &&
           seed == o.seed && cosine == o.cosine &&
           max_patch_fraction == o.max_patch_fraction &&
           insert_batch == o.insert_batch;
  }
};

/// Hierarchical Navigable Small World graph over one relation's embedding
/// table — the sublinear candidate generator in front of the exact top-K
/// scorer. The index stores *structure only* (level-linked adjacency in
/// flat arrays, row ids as node handles); vectors stay in the
/// EmbeddingStore, and every distance evaluated during Search goes through
/// the caller's BlockScorer — the same dtype-dispatched ScoreBlock kernels
/// the exact scan uses — so ANN never introduces a second scoring
/// semantics, only a smaller candidate pool.
///
/// Similarity is the (optionally cosine-normalized) dot product; "closer"
/// means a larger score. Dot product is not a metric, but HNSW over inner
/// product is standard practice and the recall gate in bench/micro_ann
/// measures the end-to-end effect against the exact scan.
///
/// Instances are immutable after Build/Patched and shared via
/// shared_ptr<const AnnIndex>; Search allocates its own visited bitmap, so
/// any number of threads can search one index concurrently while a
/// publisher builds its replacement.
class AnnIndex {
 public:
  /// Builds an index over relation `rel` of `store` (any dtype; quantized
  /// tables are dequantized into a transient fp32 copy for construction).
  /// Fails on an empty table.
  static StatusOr<std::shared_ptr<const AnnIndex>> Build(
      const EmbeddingStore& store, RelationId rel,
      const AnnBuildOptions& options);

  /// Copy-on-write incremental patch for LiveEmbeddingStore::Publish: a new
  /// index sharing `prev`'s structure, with rows appended since prev
  /// inserted and `dirty_rows` (ascending table rows whose vectors changed)
  /// re-linked from scratch. Stale *incoming* links to a re-linked row are
  /// left in place — they still point at a live row, only its vector moved,
  /// which costs a little recall rather than correctness; the
  /// max_patch_fraction policy in topk.cc bounds how much of that drift can
  /// accumulate before a full rebuild. `store` is the post-publish table;
  /// its row count must be >= prev.num_rows().
  static StatusOr<std::shared_ptr<const AnnIndex>> Patched(
      const AnnIndex& prev, const EmbeddingStore& store, RelationId rel,
      std::span<const uint32_t> dirty_rows);

  struct SearchStats {
    /// Nodes expanded (popped from the candidate beam) across all levels.
    size_t hops = 0;
  };

  /// Beam search: descends the level hierarchy greedily, then runs an
  /// `ef`-wide best-first search on level 0. Returns up to `ef` table rows
  /// in best-first order (descending similarity, ties by ascending row).
  /// `scorer` must wrap the same relation the index was built over;
  /// `row_norms` (cosine mode) holds the per-row L2 norms the recommender
  /// precomputed — raw kernel scores are divided by them so traversal ranks
  /// in the same space the index was built in (empty span = raw dot).
  void Search(BlockScorer& scorer, size_t ef, std::span<const float> row_norms,
              std::vector<uint32_t>* out, SearchStats* stats) const;

  size_t num_rows() const { return num_rows_; }
  size_t dim() const { return dim_; }
  int max_level() const { return max_level_; }
  uint32_t entry_point() const { return entry_; }
  const AnnBuildOptions& options() const { return options_; }

  /// FNV-1a over every structural array (levels, adjacency, entry point) —
  /// the "same seed, same table => same index bytes" determinism probe.
  uint64_t ContentHash() const;

  /// Approximate resident bytes of the adjacency arrays.
  size_t MemoryBytes() const;

 private:
  AnnIndex() = default;

  struct Builder;  // defined in ann_index.cc

  /// Base of row's (1 + M_)-wide slab for upper level `level` (>= 1).
  uint32_t* UpperSlab(uint32_t row, int level);
  const uint32_t* UpperSlab(uint32_t row, int level) const;

  AnnBuildOptions options_;
  size_t dim_ = 0;
  size_t num_rows_ = 0;
  size_t M_ = 0;    // link cap, levels >= 1
  size_t M0_ = 0;   // link cap, level 0 (2*M)
  int max_level_ = 0;
  uint32_t entry_ = 0;

  /// Per-row top level (0 = present only in the base layer).
  std::vector<uint8_t> levels_;
  /// Level-0 adjacency: row i's links live in links0_[i*M0_ .. ), with
  /// counts0_[i] of them valid.
  std::vector<uint32_t> counts0_;
  std::vector<uint32_t> links0_;
  /// Upper-level adjacency, concatenated slabs: a row with top level L >= 1
  /// owns L slabs of (1 + M_) u32 each starting at
  /// upper_offset_[row] * (1 + M_); the slab for level l (1-based) is slab
  /// l-1, laid out [count, neighbors...]. Rows with level 0 have
  /// upper_offset_ == kNoSlab.
  static constexpr uint32_t kNoSlab = UINT32_MAX;
  std::vector<uint32_t> upper_offset_;
  std::vector<uint32_t> upper_;
};

/// Env-gated ANN switch: HYBRIDGNN_ANN=on|1 forces candidate generation
/// through the index, =off|0 forces the exact scan, unset defers to
/// `requested` (TopKOptions::ann).
bool ResolveAnnEnabled(bool requested);

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_ANN_ANN_INDEX_H_
