#ifndef HYBRIDGNN_SERVE_STORE_MODEL_H_
#define HYBRIDGNN_SERVE_STORE_MODEL_H_

#include <memory>
#include <string>

#include "eval/embedding_model.h"
#include "serve/embedding_store.h"

namespace hybridgnn {

/// EmbeddingModel adapter over a frozen EmbeddingStore: plugs a loaded
/// checkpoint into everything that consumes the model interface (the
/// evaluator, the benches, the CLI) without retraining. Embedding lookups
/// return the stored rows bit-for-bit, and ScoreMany inherits the default
/// dot-product path over those rows — so link-prediction metrics on a
/// store-backed model reproduce the in-memory model's *exactly* for every
/// dot-decoder model. (R-GCN's DistMult decoder is not a plain dot; a
/// checkpoint of it serves dot-product scores, as documented in
/// serve/checkpoint.h.)
class StoreBackedModel : public EmbeddingModel {
 public:
  explicit StoreBackedModel(std::shared_ptr<const EmbeddingStore> store)
      : store_(std::move(store)) {}

  /// Reports the name of the model that produced the checkpoint, so
  /// evaluation tables look identical to the live-model runs.
  std::string name() const override { return store_->model_name(); }

  /// A checkpoint is frozen; training it again is a usage error.
  Status Fit(const MultiplexHeteroGraph& train_graph,
             const FitOptions& options) override {
    return Status::FailedPrecondition(
        "StoreBackedModel is frozen: load a checkpoint or fit the original "
        "model instead");
  }
  using EmbeddingModel::Fit;

  /// Stored row of (v, r), or a zero vector when the table has no row for
  /// `v` (an untrained/out-of-vocabulary node scores 0 against everything).
  Tensor Embedding(NodeId v, RelationId r) const override;

  /// Bulk gather straight out of the store — one memcpy per query row.
  Tensor EmbeddingsFor(
      std::span<const std::pair<NodeId, RelationId>> queries) const override;

  const EmbeddingStore& store() const { return *store_; }

 private:
  std::shared_ptr<const EmbeddingStore> store_;
};

}  // namespace hybridgnn

#endif  // HYBRIDGNN_SERVE_STORE_MODEL_H_
